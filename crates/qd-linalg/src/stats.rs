//! Moment accumulation and per-dimension normalization.
//!
//! [`RunningStats`] implements Welford/West single-pass accumulation of mean,
//! variance, and the third central moment; the color-moment features of
//! `qd-features` are defined directly in terms of these. [`Normalizer`]
//! applies per-dimension z-scoring so that the 37 heterogeneous feature
//! dimensions (color moments, wavelet energies, edge statistics) contribute
//! comparably to Euclidean distances, as any practical CBIR system must do.

/// Single-pass accumulator for the first three central moments.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f32) {
        let x = x as f64;
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Third central moment `E[(x - μ)^3]`; 0 for fewer than two observations.
    pub fn third_central_moment(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m3 / self.n as f64
        }
    }

    /// Signed cube root of the third central moment — the "skewness" feature
    /// of Stricker & Orengo's color moments, which keeps the feature on the
    /// same scale as the mean and standard deviation.
    pub fn skewness_root(&self) -> f64 {
        let m3 = self.third_central_moment();
        m3.signum() * m3.abs().cbrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
    }
}

/// Per-dimension z-score normalizer fitted on a corpus of feature vectors.
#[derive(Debug, Clone)]
pub struct Normalizer {
    means: Vec<f32>,
    inv_stds: Vec<f32>,
}

impl Normalizer {
    /// Fits means and standard deviations over `data`. Dimensions whose
    /// standard deviation is below `1e-9` are passed through centered but
    /// unscaled (their inverse std is treated as 1), so constant dimensions
    /// do not blow up.
    ///
    /// # Panics
    /// Panics if `data` is empty or rows differ in length.
    pub fn fit<V: AsRef<[f32]>>(data: &[V]) -> Self {
        assert!(!data.is_empty(), "cannot fit a normalizer on no data");
        let dim = data[0].as_ref().len();
        let mut stats = vec![RunningStats::new(); dim];
        for row in data {
            let row = row.as_ref();
            assert_eq!(row.len(), dim, "vector length mismatch");
            for (s, &x) in stats.iter_mut().zip(row) {
                s.push(x);
            }
        }
        // CAST: f64 running means narrowed back to the f32 feature domain.
        let means = stats.iter().map(|s| s.mean() as f32).collect();
        let inv_stds = stats
            .iter()
            .map(|s| {
                let sd = s.std_dev();
                if sd < 1e-9 {
                    1.0
                } else {
                    // CAST: sd ≥ 1e-9 bounds 1/sd ≤ 1e9, inside f32 range.
                    (1.0 / sd) as f32
                }
            })
            .collect();
        Self { means, inv_stds }
    }

    /// Identity normalizer for `dim` dimensions (used by tests and synthetic
    /// corpora that are already standardized).
    pub fn identity(dim: usize) -> Self {
        Self {
            means: vec![0.0; dim],
            inv_stds: vec![1.0; dim],
        }
    }

    /// Dimensionality this normalizer was fitted for.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Applies the z-score transform to one vector.
    ///
    /// # Panics
    /// Panics if `v` has the wrong dimensionality.
    pub fn transform(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim(), "vector length mismatch");
        v.iter()
            .zip(&self.means)
            .zip(&self.inv_stds)
            .map(|((x, m), s)| (x - m) * s)
            .collect()
    }

    /// Applies the transform to every row of `data`, in place.
    pub fn transform_all(&self, data: &mut [Vec<f32>]) {
        for row in data {
            let t = self.transform(row);
            *row = t;
        }
    }

    /// Decomposes the normalizer into `(means, inverse standard deviations)`
    /// for serialization.
    pub fn to_parts(&self) -> (&[f32], &[f32]) {
        (&self.means, &self.inv_stds)
    }

    /// Rebuilds a normalizer from serialized parts.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn from_parts(means: Vec<f32>, inv_stds: Vec<f32>) -> Self {
        assert_eq!(means.len(), inv_stds.len(), "parts length mismatch");
        assert!(!means.is_empty(), "empty normalizer");
        Self { means, inv_stds }
    }

    /// Inverts the transform (up to floating point error).
    pub fn inverse(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim(), "vector length mismatch");
        v.iter()
            .zip(&self.means)
            .zip(&self.inv_stds)
            .map(|((z, m), s)| z / s + m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_closed_form() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn third_moment_of_symmetric_data_is_zero() {
        let mut s = RunningStats::new();
        for x in [-2.0f32, -1.0, 0.0, 1.0, 2.0] {
            s.push(x);
        }
        assert!(s.third_central_moment().abs() < 1e-9);
        assert!(s.skewness_root().abs() < 1e-3);
    }

    #[test]
    fn third_moment_sign_follows_skew() {
        let mut right = RunningStats::new();
        for x in [0.0f32, 0.0, 0.0, 10.0] {
            right.push(x);
        }
        assert!(right.third_central_moment() > 0.0);
        let mut left = RunningStats::new();
        for x in [0.0f32, 0.0, 0.0, -10.0] {
            left.push(x);
        }
        assert!(left.third_central_moment() < 0.0);
    }

    #[test]
    fn empty_and_singleton_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(42.0);
        assert_eq!(s1.mean(), 42.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.third_central_moment(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f32> = (0..50)
            .map(|i| (i as f32 * 0.7).sin() * 3.0 + 1.0)
            .collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert!((a.third_central_moment() - whole.third_central_moment()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
        assert_eq!(empty.count(), before.count());
    }

    #[test]
    fn normalizer_standardizes_each_dimension() {
        let data = vec![
            vec![0.0f32, 100.0],
            vec![2.0, 200.0],
            vec![4.0, 300.0],
            vec![6.0, 400.0],
        ];
        let norm = Normalizer::fit(&data);
        let mut transformed: Vec<Vec<f32>> = data.iter().map(|v| norm.transform(v)).collect();
        for d in 0..2 {
            let mut s = RunningStats::new();
            for row in &transformed {
                s.push(row[d]);
            }
            assert!(s.mean().abs() < 1e-6, "dim {d} mean");
            assert!((s.std_dev() - 1.0).abs() < 1e-5, "dim {d} std");
        }
        // transform_all agrees with per-row transform
        let mut data2 = data.clone();
        norm.transform_all(&mut data2);
        assert_eq!(data2, std::mem::take(&mut transformed));
    }

    #[test]
    fn normalizer_inverse_roundtrips() {
        let data = vec![vec![1.0f32, -3.0], vec![5.0, 7.0], vec![2.0, 0.5]];
        let norm = Normalizer::fit(&data);
        for row in &data {
            let back = norm.inverse(&norm.transform(row));
            for (a, b) in back.iter().zip(row) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn normalizer_constant_dimension_does_not_explode() {
        let data = vec![vec![5.0f32, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let norm = Normalizer::fit(&data);
        let t = norm.transform(&[5.0, 2.0]);
        assert!(t[0].is_finite());
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn identity_normalizer_is_noop() {
        let norm = Normalizer::identity(3);
        assert_eq!(norm.transform(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }
}
