//! Principal Component Analysis via cyclic Jacobi eigendecomposition.
//!
//! Section 1.1 of the paper projects the 37-dimensional image database onto a
//! 3-dimensional orthogonal subspace with PCA to visualize the four distinct
//! "white sedan" clusters (Figure 1). The covariance matrices involved are at
//! most 37×37, so the classic Jacobi rotation method — simple, numerically
//! robust, and free of external dependencies — is the right tool.

use crate::matrix::Matrix;

/// A fitted PCA model: the top `k` principal axes of a data set.
///
/// ```
/// use qd_linalg::Pca;
///
/// // Points along the x axis: one component captures all the variance.
/// let data: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, 0.0]).collect();
/// let pca = Pca::fit(&data, 1);
/// assert!(pca.explained_variance_ratio() > 0.999);
/// assert_eq!(pca.project(&[5.0, 0.0]).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// One row per retained component, each of length `dim`, orthonormal,
    /// ordered by descending eigenvalue.
    components: Vec<Vec<f32>>,
    /// Eigenvalues (variances along each retained component), descending.
    explained_variance: Vec<f64>,
    /// Sum of all eigenvalues (total variance), for variance-ratio queries.
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA retaining the top `k` components of `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty, rows differ in length, or
    /// `k` exceeds the dimensionality.
    pub fn fit<V: AsRef<[f32]>>(data: &[V], k: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit PCA on no data");
        let dim = data[0].as_ref().len();
        assert!(k <= dim, "cannot retain more components than dimensions");
        let cov = Matrix::covariance(data);
        let (eigvals, eigvecs) = jacobi_eigen(&cov, 1e-12, 100);

        // Sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..dim).collect();
        order.sort_by(|&a, &b| eigvals[b].total_cmp(&eigvals[a]));

        let mean = {
            let n = data.len() as f64;
            let mut m = vec![0.0f64; dim];
            for row in data {
                for (acc, &x) in m.iter_mut().zip(row.as_ref()) {
                    *acc += x as f64;
                }
            }
            // CAST: f64-accumulated column means narrowed back to the f32
            // feature domain.
            m.into_iter().map(|x| (x / n) as f32).collect()
        };

        let components = order[..k]
            .iter()
            // CAST: eigenvector entries are unit-normalized (|x| ≤ 1);
            // narrowing to the f32 projection domain loses only precision.
            .map(|&c| (0..dim).map(|r| eigvecs[(r, c)] as f32).collect())
            .collect();
        let explained_variance = order[..k].iter().map(|&c| eigvals[c].max(0.0)).collect();
        let total_variance = eigvals.iter().map(|v| v.max(0.0)).sum();

        Self {
            mean,
            components,
            explained_variance,
            total_variance,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The retained principal axes, one row per component, orthonormal,
    /// ordered by descending explained variance.
    pub fn components(&self) -> &[Vec<f32>] {
        &self.components
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of the total variance captured by the retained components.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            // A constant data set has no variance to explain; by convention
            // the retained subspace captures all of it.
            1.0
        } else {
            self.explained_variance.iter().sum::<f64>() / self.total_variance
        }
    }

    /// Projects one vector into the retained subspace.
    ///
    /// # Panics
    /// Panics if `v` has the wrong dimensionality.
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim(), "vector length mismatch");
        self.components
            .iter()
            .map(|axis| {
                v.iter()
                    .zip(axis)
                    .zip(&self.mean)
                    .map(|((x, a), m)| ((x - m) as f64) * (*a as f64))
                    // CAST: f64-accumulated projection narrowed back to the
                    // f32 feature domain.
                    .sum::<f64>() as f32
            })
            .collect()
    }

    /// Projects every row of `data`.
    pub fn project_all<V: AsRef<[f32]>>(&self, data: &[V]) -> Vec<Vec<f32>> {
        data.iter().map(|v| self.project(v.as_ref())).collect()
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` where column `c` of the eigenvector
/// matrix corresponds to `eigenvalues[c]`. Iterates whole sweeps until the
/// largest off-diagonal magnitude falls below `tol` or `max_sweeps` is hit.
pub fn jacobi_eigen(m: &Matrix, tol: f64, max_sweeps: usize) -> (Vec<f64>, Matrix) {
    assert_eq!(m.rows(), m.cols(), "square matrix required");
    let n = m.rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        if a.max_off_diagonal() < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < tol {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Rotate rows/columns p and q of `a`.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let eigvals = (0..n).map(|i| a[(i, i)]).collect();
    (eigvals, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
        let m = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (mut vals, _) = jacobi_eigen(&m, 1e-14, 50);
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(approx(vals[0], 1.0, 1e-10));
        assert!(approx(vals[1], 3.0, 1e-10));
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, -1.0, 0.5, -1.0, 2.0]);
        let (_, v) = jacobi_eigen(&m, 1e-14, 100);
        let vtv = v.transpose().matmul(&v);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(approx(vtv[(i, j)], expected, 1e-10), "({i},{j})");
            }
        }
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        // A = V diag(λ) V^T
        let m = Matrix::from_rows(3, 3, vec![5.0, 2.0, 0.0, 2.0, 1.0, 3.0, 0.0, 3.0, 4.0]);
        let (vals, v) = jacobi_eigen(&m, 1e-14, 100);
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = vals[i];
        }
        let rec = v.matmul(&d).matmul(&v.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(rec[(i, j)], m[(i, j)], 1e-9), "({i},{j})");
            }
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along y = 2x with small perpendicular noise: the first
        // principal axis must align with (1, 2)/sqrt(5).
        let data: Vec<Vec<f32>> = (0..100)
            .map(|i| {
                let t = (i as f32 - 50.0) / 10.0;
                let noise = ((i * 37 % 17) as f32 - 8.0) / 200.0;
                vec![t - 2.0 * noise, 2.0 * t + noise]
            })
            .collect();
        let pca = Pca::fit(&data, 1);
        let axis = &pca.components()[0];
        let expected = [1.0 / 5.0f32.sqrt(), 2.0 / 5.0f32.sqrt()];
        let dot: f32 = axis.iter().zip(&expected).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.999, "axis {axis:?} vs {expected:?}");
    }

    #[test]
    fn pca_variances_are_descending() {
        let data: Vec<Vec<f32>> = (0..60)
            .map(|i| {
                let i = i as f32;
                vec![i, (i * 0.3).sin() * 5.0, (i * 1.7).cos()]
            })
            .collect();
        let pca = Pca::fit(&data, 3);
        let ev = pca.explained_variance();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2]);
        assert!(approx(pca.explained_variance_ratio(), 1.0, 1e-9));
    }

    #[test]
    fn pca_projection_preserves_pairwise_distance_in_full_rank() {
        // With k = dim, projection is a rigid rotation + centering, so all
        // pairwise distances are preserved.
        let data = vec![
            vec![1.0f32, 0.0, 2.0],
            vec![0.0, 3.0, 1.0],
            vec![-1.0, 1.0, 0.0],
            vec![2.0, 2.0, 2.0],
        ];
        let pca = Pca::fit(&data, 3);
        let proj = pca.project_all(&data);
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                let d0 = crate::metric::euclidean(&data[i], &data[j]);
                let d1 = crate::metric::euclidean(&proj[i], &proj[j]);
                assert!((d0 - d1).abs() < 1e-4, "pair ({i},{j}): {d0} vs {d1}");
            }
        }
    }

    #[test]
    fn pca_separates_two_distant_clusters_in_one_component() {
        let mut data = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f32 * 0.01;
            data.push(vec![0.0 + j, 0.0, 5.0]);
            data.push(vec![100.0 + j, 0.0, 5.0]);
        }
        let pca = Pca::fit(&data, 1);
        let proj = pca.project_all(&data);
        // Alternating points must land on opposite sides of zero.
        for pair in proj.chunks(2) {
            assert!(pair[0][0] * pair[1][0] < 0.0);
        }
    }

    #[test]
    fn pca_on_constant_data_is_degenerate_but_safe() {
        let data = vec![vec![1.0f32, 2.0]; 5];
        let pca = Pca::fit(&data, 2);
        assert_eq!(pca.project(&[1.0, 2.0]), vec![0.0, 0.0]);
        assert_eq!(pca.explained_variance_ratio(), 1.0);
    }
}
