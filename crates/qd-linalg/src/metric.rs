//! Distance measures used by retrieval, clustering, and the RFS structure.
//!
//! The paper scores images by Euclidean distance to a (multipoint) query
//! centroid (§3.4). The baselines need more: MindReader-style query point
//! movement re-weights dimensions by feedback variance, and Qcluster evaluates
//! disjunctive per-cluster contours. [`Metric`] covers all of these behind one
//! enum so query processors can be generic over the measure without dynamic
//! dispatch in the hot loop.

/// A distance measure over equal-length `f32` vectors.
///
/// ```
/// use qd_linalg::Metric;
///
/// let d = Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]);
/// assert!((d - 5.0).abs() < 1e-6);
///
/// // Weighted: zero out the first dimension entirely.
/// let w = Metric::WeightedEuclidean(vec![0.0, 1.0]);
/// assert_eq!(w.distance(&[100.0, 2.0], &[0.0, 2.0]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Standard Euclidean (L2) distance.
    Euclidean,
    /// Squared Euclidean distance. Monotone with [`Metric::Euclidean`]; cheaper
    /// when only the ranking matters (k-means, nearest-centroid assignment).
    SquaredEuclidean,
    /// Manhattan (L1) distance.
    Manhattan,
    /// Chebyshev (L∞) distance.
    Chebyshev,
    /// Cosine distance `1 - cos(a, b)`; zero vectors are at distance 1 from
    /// everything except other zero vectors.
    Cosine,
    /// Per-dimension weighted Euclidean distance
    /// `sqrt(Σ w_j (a_j - b_j)^2)`, the form used by MindReader-style
    /// relevance feedback. Weights must be non-negative.
    WeightedEuclidean(Vec<f32>),
}

impl Metric {
    /// Distance between `a` and `b`.
    ///
    /// # Panics
    /// Panics if the slices differ in length, or (for
    /// [`Metric::WeightedEuclidean`]) if the weight vector length does not
    /// match the data.
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "vector length mismatch");
        match self {
            Metric::Euclidean => sq_l2(a, b).sqrt(),
            Metric::SquaredEuclidean => sq_l2(a, b),
            Metric::Manhattan => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs() as f64)
                // CAST: f64-accumulated distance narrowed back to the f32
                // feature domain; the widening was only to stabilize the sum.
                .sum::<f64>() as f32,
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max),
            Metric::Cosine => {
                let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
                for (x, y) in a.iter().zip(b) {
                    dot += *x as f64 * *y as f64;
                    na += (*x as f64).powi(2);
                    nb += (*y as f64).powi(2);
                }
                if na == 0.0 && nb == 0.0 {
                    0.0
                } else if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    // CAST: cosine distance lies in [0, 2]; f32 holds it.
                    (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0) as f32
                }
            }
            Metric::WeightedEuclidean(w) => {
                assert_eq!(w.len(), a.len(), "weight length mismatch");
                a.iter()
                    .zip(b)
                    .zip(w)
                    .map(|((x, y), wj)| {
                        debug_assert!(*wj >= 0.0, "negative metric weight");
                        *wj as f64 * ((x - y) as f64).powi(2)
                    })
                    .sum::<f64>()
                    // CAST: f64-accumulated weighted distance narrowed back
                    // to the f32 feature domain.
                    .sqrt() as f32
            }
        }
    }

    /// True if `distance` satisfies the triangle inequality and symmetry
    /// (i.e. is a true metric). Squared Euclidean is not.
    pub fn is_metric(&self) -> bool {
        !matches!(self, Metric::SquaredEuclidean | Metric::Cosine)
    }

    /// MindReader-style weights: the reciprocal of the per-dimension variance
    /// of the relevant examples, so dimensions on which the user's relevant
    /// set agrees count more. Dimensions with (near-)zero variance receive the
    /// largest finite weight observed, capped at `max_weight`.
    pub fn mindreader_weights<V: AsRef<[f32]>>(relevant: &[V], max_weight: f32) -> Vec<f32> {
        assert!(!relevant.is_empty(), "no relevant examples");
        let dim = relevant[0].as_ref().len();
        let n = relevant.len() as f64;
        let mut mean = vec![0.0f64; dim];
        for v in relevant {
            for (m, x) in mean.iter_mut().zip(v.as_ref()) {
                *m += *x as f64;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0f64; dim];
        for v in relevant {
            for ((s, x), m) in var.iter_mut().zip(v.as_ref()).zip(&mean) {
                *s += (*x as f64 - m).powi(2);
            }
        }
        var.iter()
            .map(|s| {
                let v = s / n;
                if v < 1e-12 {
                    max_weight
                } else {
                    // CAST: v ≥ 1e-12 bounds 1/v ≤ 1e12, inside f32 range;
                    // the min() clamp caps it at max_weight anyway.
                    ((1.0 / v) as f32).min(max_weight)
                }
            })
            .collect()
    }
}

#[inline]
fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| ((x - y) as f64).powi(2))
        // CAST: f64-accumulated squared distance narrowed back to the f32
        // feature domain; the widening was only to stabilize the sum.
        .sum::<f64>() as f32
}

/// Convenience: Euclidean distance without constructing a [`Metric`].
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    sq_l2(a, b).sqrt()
}

/// Convenience: squared Euclidean distance without constructing a [`Metric`].
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    sq_l2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f32; 3] = [1.0, 2.0, 3.0];
    const B: [f32; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_matches_hand_computation() {
        // sqrt(9 + 16 + 0) = 5
        assert!((Metric::Euclidean.distance(&A, &B) - 5.0).abs() < 1e-6);
        assert!((euclidean(&A, &B) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        assert!((Metric::SquaredEuclidean.distance(&A, &B) - 25.0).abs() < 1e-5);
        assert!((squared_euclidean(&A, &B) - 25.0).abs() < 1e-5);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert_eq!(Metric::Manhattan.distance(&A, &B), 7.0);
    }

    #[test]
    fn chebyshev_matches_hand_computation() {
        assert_eq!(Metric::Chebyshev.distance(&A, &B), 4.0);
    }

    #[test]
    fn cosine_of_parallel_vectors_is_zero() {
        let d = Metric::Cosine.distance(&[1.0, 2.0], &[2.0, 4.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_one() {
        let d = Metric::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn weighted_euclidean_with_unit_weights_is_euclidean() {
        let w = Metric::WeightedEuclidean(vec![1.0; 3]);
        assert!((w.distance(&A, &B) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_euclidean_ignores_zero_weight_dimensions() {
        let w = Metric::WeightedEuclidean(vec![0.0, 0.0, 1.0]);
        assert_eq!(w.distance(&[9.0, 9.0, 1.0], &[0.0, 0.0, 1.0]), 0.0);
    }

    #[test]
    fn all_metrics_are_symmetric_and_zero_on_identity() {
        let metrics = [
            Metric::Euclidean,
            Metric::SquaredEuclidean,
            Metric::Manhattan,
            Metric::Chebyshev,
            Metric::Cosine,
            Metric::WeightedEuclidean(vec![0.5, 2.0, 1.0]),
        ];
        for m in metrics {
            assert!(
                (m.distance(&A, &B) - m.distance(&B, &A)).abs() < 1e-6,
                "{m:?}"
            );
            assert!(m.distance(&A, &A).abs() < 1e-6, "{m:?}");
        }
    }

    #[test]
    fn is_metric_classification() {
        assert!(Metric::Euclidean.is_metric());
        assert!(Metric::Manhattan.is_metric());
        assert!(!Metric::SquaredEuclidean.is_metric());
        assert!(!Metric::Cosine.is_metric());
    }

    #[test]
    fn mindreader_weights_emphasize_agreeing_dimensions() {
        // Dimension 0 is constant among relevant examples, dimension 1 varies.
        let relevant = vec![vec![5.0, 0.0], vec![5.0, 10.0], vec![5.0, -10.0]];
        let w = Metric::mindreader_weights(&relevant, 1e6);
        assert!(w[0] > w[1]);
        assert_eq!(w[0], 1e6); // zero variance saturates at the cap
    }

    #[test]
    fn mindreader_weights_are_capped() {
        let relevant = vec![vec![1.0], vec![1.0 + 1e-9]];
        let w = Metric::mindreader_weights(&relevant, 100.0);
        assert!(w[0] <= 100.0);
    }
}
