//! Seeded open-loop load generation: who shows up, when, and how they
//! behave.
//!
//! A [`LoadPlan`] is a fully materialized arrival schedule — every session's
//! query, behavior scenario, deadline, and seeds are fixed before the server
//! starts. The generator is a pure function of `(corpus, LoadConfig)`, so
//! the same plan can be replayed against any scheduler configuration and the
//! per-session work is identical (the isolation property tests depend on
//! this).

use qd_core::session::QdConfig;
use qd_core::SimulatedUser;
use qd_corpus::{queries, Corpus, QuerySpec};
use qd_fault::FaultPlan;

/// Stable identifier of one simulated tenant session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{:03}", self.0)
    }
}

/// How a simulated tenant behaves across their feedback rounds — the
/// scenario matrix of the serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Marks exactly the ground truth, pages through every display.
    Cooperative,
    /// Starts with one intent, switches to another query's ground truth
    /// after `after` judgments (query ambiguity mid-session).
    DriftingIntent {
        /// Judgments made before the intent switch.
        after: usize,
    },
    /// Flips a fraction of judgments at random — self-contradictory marks.
    ContradictoryMarks {
        /// Probability that a single judgment is flipped.
        noise: f32,
    },
    /// Inspects only a few images per round and carries a serving deadline,
    /// so the scheduler truncates the session to its best-so-far prefix.
    ImpatientTruncation {
        /// Images inspected per feedback round.
        patience: usize,
    },
}

impl Scenario {
    /// Stable lowercase label for reports and histogram keys.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Cooperative => "cooperative",
            Scenario::DriftingIntent { .. } => "drifting-intent",
            Scenario::ContradictoryMarks { .. } => "contradictory-marks",
            Scenario::ImpatientTruncation { .. } => "impatient-truncation",
        }
    }
}

/// Everything one session brings to the door: identity, arrival time,
/// query, behavior, budgets, and (optionally) a private fault plan the
/// server installs around that session's steps only.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Stable session identity; fault decisions key off this.
    pub id: SessionId,
    /// Scheduler tick at which the session arrives.
    pub arrival_tick: u64,
    /// Behavior scenario driving the simulated user.
    pub scenario: Scenario,
    /// The query the session starts with.
    pub query: QuerySpec,
    /// Drift target for [`Scenario::DriftingIntent`] sessions.
    pub drift_to: Option<QuerySpec>,
    /// Seed of the session's simulated user.
    pub user_seed: u64,
    /// Results requested.
    pub k: usize,
    /// Engine configuration (rounds, merge rule, shuffle seed, budget).
    pub cfg: QdConfig,
    /// Optional serving deadline in deterministic cost units (representative
    /// displays + distance computations). When spent cost reaches the
    /// deadline, the feedback phase truncates to its best-so-far prefix and
    /// the final k-NN runs on whatever budget remains.
    pub deadline: Option<u64>,
    /// Optional per-session fault plan: installed around this session's
    /// steps only, so one tenant's injected faults cannot leak into a
    /// neighbor's execution.
    pub fault_plan: Option<FaultPlan>,
}

impl SessionSpec {
    /// Builds the session's simulated user per its scenario.
    pub fn user(&self) -> SimulatedUser {
        let user = SimulatedUser::oracle(&self.query, self.user_seed);
        match self.scenario {
            Scenario::Cooperative => user,
            Scenario::DriftingIntent { after } => {
                let target = self.drift_to.as_ref().unwrap_or(&self.query);
                user.with_drift(target, after)
            }
            Scenario::ContradictoryMarks { noise } => user.with_noise(noise),
            Scenario::ImpatientTruncation { patience } => user.with_patience(patience),
        }
    }
}

/// Knobs of the load generator.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of sessions generated.
    pub users: usize,
    /// Master seed; every per-session choice hashes off this.
    pub seed: u64,
    /// Open-loop arrival rate: sessions arriving per scheduler tick.
    pub arrivals_per_tick: u64,
    /// Feedback rounds per session.
    pub rounds: usize,
    /// Results per session; `None` = each query's ground-truth size.
    pub k: Option<usize>,
    /// Cost-unit deadline attached to impatient sessions.
    pub deadline: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            users: 12,
            seed: 7,
            arrivals_per_tick: 2,
            rounds: 3,
            k: None,
            deadline: 900,
        }
    }
}

/// A materialized arrival schedule: session specs sorted by
/// `(arrival_tick, id)`.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The sessions, in arrival order.
    pub specs: Vec<SessionSpec>,
}

/// SplitMix64 — the crate's only hash, used for every seeded choice.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl LoadPlan {
    /// Generates the deterministic scenario-matrix load: each session's
    /// query, scenario, and seeds are pure hashes of `(cfg.seed, id)`, and
    /// arrivals are open-loop at `arrivals_per_tick`.
    pub fn generate(corpus: &Corpus, cfg: &LoadConfig) -> LoadPlan {
        assert!(cfg.users >= 1, "at least one user required");
        assert!(cfg.arrivals_per_tick >= 1, "arrival rate must be positive");
        let queries = queries::standard_queries(corpus.taxonomy());
        let specs = (0..cfg.users as u64)
            .map(|i| {
                let h = mix64(cfg.seed ^ mix64(i + 1));
                let qi = (h as usize) % queries.len();
                let query = queries[qi].clone();
                let scenario = match (h >> 16) % 4 {
                    0 => Scenario::Cooperative,
                    1 => Scenario::DriftingIntent { after: 30 },
                    2 => Scenario::ContradictoryMarks { noise: 0.35 },
                    _ => Scenario::ImpatientTruncation { patience: 12 },
                };
                // Drift target: always a *different* standard query.
                let drift_to = match scenario {
                    Scenario::DriftingIntent { .. } => {
                        let step = 1 + ((h >> 24) as usize) % (queries.len() - 1);
                        Some(queries[(qi + step) % queries.len()].clone())
                    }
                    _ => None,
                };
                let deadline = match scenario {
                    Scenario::ImpatientTruncation { .. } => Some(cfg.deadline),
                    _ => None,
                };
                let k = cfg.k.unwrap_or_else(|| corpus.ground_truth(&query).len());
                SessionSpec {
                    id: SessionId(i),
                    arrival_tick: i / cfg.arrivals_per_tick,
                    scenario,
                    query,
                    drift_to,
                    user_seed: mix64(h ^ 0xD1B5_4A32_D192_ED03),
                    k,
                    cfg: QdConfig {
                        rounds: cfg.rounds,
                        seed: mix64(h ^ 0xA24B_AED4_963E_E407),
                        ..QdConfig::default()
                    },
                    deadline,
                    fault_plan: None,
                }
            })
            .collect();
        LoadPlan { specs }
    }

    /// A single-session plan containing only `id` (arriving at tick 0) —
    /// the "run this tenant alone" baseline the isolation property compares
    /// a multi-tenant run against.
    pub fn solo(&self, id: SessionId) -> Option<LoadPlan> {
        self.specs.iter().find(|s| s.id == id).map(|s| {
            let mut spec = s.clone();
            spec.arrival_tick = 0;
            LoadPlan { specs: vec![spec] }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qd_corpus::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::build(&CorpusConfig {
            size: 120,
            image_size: 16,
            seed: 5,
            filler_count: 2,
            with_viewpoints: false,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let c = corpus();
        let cfg = LoadConfig::default();
        let a = LoadPlan::generate(&c, &cfg);
        let b = LoadPlan::generate(&c, &cfg);
        assert_eq!(a.specs.len(), cfg.users);
        for (x, y) in a.specs.iter().zip(&b.specs) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival_tick, y.arrival_tick);
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.query.name, y.query.name);
            assert_eq!(x.user_seed, y.user_seed);
            assert_eq!(x.k, y.k);
        }
    }

    #[test]
    fn arrivals_are_open_loop_and_sorted() {
        let c = corpus();
        let plan = LoadPlan::generate(
            &c,
            &LoadConfig {
                users: 9,
                arrivals_per_tick: 3,
                ..LoadConfig::default()
            },
        );
        let ticks: Vec<u64> = plan.specs.iter().map(|s| s.arrival_tick).collect();
        assert_eq!(ticks, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn drift_targets_differ_from_the_original_query() {
        let c = corpus();
        let plan = LoadPlan::generate(
            &c,
            &LoadConfig {
                users: 64,
                ..LoadConfig::default()
            },
        );
        let mut drifting = 0;
        for spec in &plan.specs {
            if let Scenario::DriftingIntent { .. } = spec.scenario {
                drifting += 1;
                let target = spec.drift_to.as_ref().expect("drift target");
                assert_ne!(target.name, spec.query.name);
            }
        }
        assert!(drifting > 0, "matrix should include drifting sessions");
    }

    #[test]
    fn solo_plan_preserves_the_spec_but_rebases_arrival() {
        let c = corpus();
        let plan = LoadPlan::generate(&c, &LoadConfig::default());
        let solo = plan.solo(SessionId(5)).expect("session 5 exists");
        assert_eq!(solo.specs.len(), 1);
        assert_eq!(solo.specs[0].id, SessionId(5));
        assert_eq!(solo.specs[0].arrival_tick, 0);
        assert_eq!(solo.specs[0].user_seed, plan.specs[5].user_seed);
        assert!(plan.solo(SessionId(999)).is_none());
    }

    #[test]
    fn impatient_sessions_carry_the_deadline() {
        let c = corpus();
        let plan = LoadPlan::generate(
            &c,
            &LoadConfig {
                users: 64,
                deadline: 123,
                ..LoadConfig::default()
            },
        );
        for spec in &plan.specs {
            match spec.scenario {
                Scenario::ImpatientTruncation { .. } => assert_eq!(spec.deadline, Some(123)),
                _ => assert_eq!(spec.deadline, None),
            }
        }
    }
}
