#![warn(missing_docs)]

//! Supervised multi-tenant serving for the Query Decomposition engine.
//!
//! The paper's efficiency argument (§5.2) is that QD makes relevance
//! feedback cheap enough to *serve*: feedback rounds are pure tree descent
//! over the shared RFS structure, so one immutable snapshot can drive many
//! concurrent user sessions. This crate supplies the serving layer that
//! argument implies:
//!
//! * a [`Server`] owning `Arc` snapshots of the corpus and RFS structure,
//!   driving interleaved sessions through a deterministic round-robin
//!   scheduler with a bounded wait queue;
//! * **admission control** with seeded load shedding — overload behavior is
//!   a pure function of `(shed seed, session id)`, never of arrival timing;
//! * **deadlines** in deterministic cost units, enforced through the
//!   engine's anytime `distance_budget` path: an over-deadline session is
//!   truncated to a valid best-so-far prefix, not killed;
//! * **panic isolation**: a poisoned session is caught, quarantined, and
//!   reported without disturbing any neighbor's outcome or trace;
//! * a seeded open-loop [load generator](LoadPlan) covering the scenario
//!   matrix (cooperative, drifting-intent, contradictory-marks,
//!   impatient-truncation).
//!
//! Everything is wall-clock-free: time is scheduler ticks, cost is
//! representative displays plus distance computations. Two runs of the same
//! `(plan, config, fault seed)` triple are byte-identical at any thread
//! count.

pub mod load;
pub mod server;

pub use load::{LoadConfig, LoadPlan, Scenario, SessionId, SessionSpec};
pub use server::{
    EvictReason, ServeConfig, ServeReport, Server, SessionOutcome, SessionReport, SessionState,
};
