//! The supervised multi-tenant scheduler.
//!
//! [`Server::run`] drives a [`LoadPlan`]'s sessions through a deterministic
//! round-robin scheduler over a shared immutable RFS snapshot. Each tick:
//! arrivals are admitted (or shed), queued sessions are promoted into free
//! active slots, and every active session advances by one step — one
//! feedback round or the final localized k-NN — executed in parallel via
//! `qd_runtime::par_try_map`.
//!
//! The isolation contract (DESIGN.md §13):
//!
//! * every session step runs under its **own** observability recorder and
//!   (when the spec carries one) its **own** fault plan, so a session's
//!   trace and fault decisions are byte-identical whether it runs alone or
//!   among any number of neighbors;
//! * a panicking step is caught by `par_try_map`; the poisoned session is
//!   quarantined (its state died with the panic) and reported as evicted,
//!   while every neighbor's step result is processed exactly as if the
//!   panic had not happened;
//! * all supervisor decisions (shedding, eviction, deadlines) are pure
//!   functions of `(config seeds, session id, accumulated deterministic
//!   cost)` — never of wall-clock time or thread scheduling.

use crate::load::{mix64, LoadPlan, Scenario, SessionId, SessionSpec};
use qd_core::session::{
    assemble_outcome, try_execute_subqueries, Degradation, FeedbackRounds, FeedbackStepper,
    QdOutcome, ServedOutcome,
};
use qd_core::{QdError, RfsStructure, SimulatedUser};
use qd_corpus::Corpus;
use qd_index::{KnnIndex, RStarTree};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Session lifecycle: `Admitted → Active → {Complete, Degraded, Evicted,
/// Failed}`. The first two are transient scheduler states; the last four
/// are terminal and appear in [`SessionReport`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Past admission control, parked in the wait queue.
    Admitted,
    /// Holding an active slot; steps each scheduler tick.
    Active,
    /// Finished with the exact answer.
    Complete,
    /// Finished with a valid best-so-far answer (deadline truncation,
    /// budget exhaustion, or injected degradation).
    Degraded,
    /// Removed by the supervisor before finishing.
    Evicted,
    /// Finished with a typed [`QdError`].
    Failed,
}

/// Why the supervisor removed a session before it finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictReason {
    /// Load shedding: the wait queue was full and the seeded coin picked
    /// this session (newcomer or oldest queued).
    Shed,
    /// The `serve.admission.reject` failpoint fired at the door.
    AdmissionFault,
    /// The session's step panicked; the panic was caught and the session
    /// quarantined. Carries the panic message.
    Poisoned(String),
    /// The `serve.session.evict` failpoint fired — operator-style forced
    /// eviction mid-flight.
    Operator,
    /// The server hit its tick limit with the session still unfinished.
    Stalled,
}

impl EvictReason {
    /// True for door-level rejections (never held an active slot's work).
    pub fn is_shed(&self) -> bool {
        matches!(self, EvictReason::Shed | EvictReason::AdmissionFault)
    }
}

/// Terminal result of one served session.
#[derive(Debug, Clone)]
pub enum SessionOutcome {
    /// The exact answer.
    Complete(QdOutcome),
    /// A valid best-so-far answer plus the degradation accounting.
    Degraded {
        /// The (still valid) session outcome.
        outcome: QdOutcome,
        /// What fell short and by how much.
        report: Degradation,
    },
    /// Removed by the supervisor; no answer.
    Evicted(EvictReason),
    /// A typed engine error.
    Failed(QdError),
}

impl SessionOutcome {
    /// The terminal [`SessionState`] this outcome represents.
    pub fn state(&self) -> SessionState {
        match self {
            SessionOutcome::Complete(_) => SessionState::Complete,
            SessionOutcome::Degraded { .. } => SessionState::Degraded,
            SessionOutcome::Evicted(_) => SessionState::Evicted,
            SessionOutcome::Failed(_) => SessionState::Failed,
        }
    }
}

/// Everything the server knows about one finished session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session's identity.
    pub id: SessionId,
    /// The behavior scenario it ran under.
    pub scenario: Scenario,
    /// Terminal outcome.
    pub outcome: SessionOutcome,
    /// Feedback rounds actually executed.
    pub rounds_run: usize,
    /// True when the serving deadline cut the feedback phase short.
    pub truncated: bool,
    /// Deterministic cost spent (representative displays + distance
    /// computations), summed over the session's steps.
    pub cost_spent: u64,
    /// Tick the session arrived.
    pub arrival_tick: u64,
    /// Tick the session reached its terminal state.
    pub finished_tick: u64,
    /// The session's private observability trace: the sum of its step
    /// traces, in step order. Byte-identical to the same session run solo.
    pub trace: qd_obs::Trace,
}

impl SessionReport {
    /// Ticks from arrival to terminal state, inclusive.
    pub fn latency_ticks(&self) -> u64 {
        self.finished_tick.saturating_sub(self.arrival_tick) + 1
    }

    /// A scheduling-independent one-line digest: everything about the
    /// session's *work* (outcome, rounds, cost, trace) and nothing about
    /// *when* the scheduler happened to run it. Two runs that step this
    /// session through the same work produce the same fingerprint at any
    /// thread count, neighbor count, or queueing delay.
    pub fn fingerprint(&self) -> String {
        let outcome = match &self.outcome {
            SessionOutcome::Complete(o) => format!(
                "complete,sub={},fb={},knn={},results={:?}",
                o.subquery_count, o.feedback_accesses, o.knn_accesses, o.results
            ),
            SessionOutcome::Degraded { outcome, report } => format!(
                "degraded,sub={},fb={},knn={},spent={},skipped={},dropped={},legs={},displays={},rounds_cut={},results={:?}",
                outcome.subquery_count,
                outcome.feedback_accesses,
                outcome.knn_accesses,
                report.budget_spent,
                report.nodes_skipped,
                report.subqueries_dropped,
                report.shard_legs_dropped,
                report.displays_skipped,
                report.rounds_truncated,
                outcome.results
            ),
            SessionOutcome::Evicted(reason) => format!("evicted,{reason:?}"),
            SessionOutcome::Failed(e) => format!("failed,{e}"),
        };
        format!(
            "{} {} rounds={} truncated={} cost={} :: {} :: trace\n{}",
            self.id,
            self.scenario.name(),
            self.rounds_run,
            self.truncated,
            self.cost_spent,
            outcome,
            self.trace.render()
        )
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Active slots: sessions stepped concurrently per tick.
    pub max_active: usize,
    /// Wait-queue capacity; arrivals beyond it trigger load shedding.
    pub queue_capacity: usize,
    /// Sessions stepped per tick (`usize::MAX` = every active session).
    pub step_batch: usize,
    /// Seed of the overload shedding coin.
    pub shed_seed: u64,
    /// Watchdog: ticks after which unfinished sessions are evicted as
    /// [`EvictReason::Stalled`] — the scheduler can never spin forever.
    pub max_ticks: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_active: 4,
            queue_capacity: 8,
            step_batch: usize::MAX,
            shed_seed: 0x5eed,
            max_ticks: 10_000,
        }
    }
}

/// The full run's result: one report per planned session plus scheduler
/// totals.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One report per session in the plan, ascending by id.
    pub sessions: Vec<SessionReport>,
    /// Scheduler ticks executed.
    pub ticks: u64,
}

impl ServeReport {
    /// The report for `id`, if the plan contained it.
    pub fn session(&self, id: SessionId) -> Option<&SessionReport> {
        self.sessions.iter().find(|s| s.id == id)
    }

    /// Ids shed at the door (admission overload or admission failpoint),
    /// ascending.
    pub fn shed_ids(&self) -> Vec<SessionId> {
        self.sessions
            .iter()
            .filter(|s| matches!(&s.outcome, SessionOutcome::Evicted(r) if r.is_shed()))
            .map(|s| s.id)
            .collect()
    }

    /// Ids evicted for any reason (shed, poisoned, operator, stalled),
    /// ascending.
    pub fn evicted_ids(&self) -> Vec<SessionId> {
        self.sessions
            .iter()
            .filter(|s| matches!(&s.outcome, SessionOutcome::Evicted(_)))
            .map(|s| s.id)
            .collect()
    }

    /// `(complete, degraded, evicted, failed)` session counts.
    pub fn state_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for s in &self.sessions {
            match s.outcome.state() {
                SessionState::Complete => counts.0 += 1,
                SessionState::Degraded => counts.1 += 1,
                SessionState::Evicted => counts.2 += 1,
                SessionState::Failed => counts.3 += 1,
                SessionState::Admitted | SessionState::Active => {}
            }
        }
        counts
    }

    /// Fraction of *answered* sessions (complete or degraded) whose answer
    /// was degraded.
    pub fn degradation_rate(&self) -> f64 {
        let (complete, degraded, _, _) = self.state_counts();
        if complete + degraded == 0 {
            0.0
        } else {
            degraded as f64 / (complete + degraded) as f64
        }
    }

    /// Deterministic multi-line summary (what `qd serve-sim` prints).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let (complete, degraded, evicted, failed) = self.state_counts();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} sessions over {} ticks: {} complete, {} degraded, {} evicted, {} failed",
            self.sessions.len(),
            self.ticks,
            complete,
            degraded,
            evicted,
            failed
        );
        for r in &self.sessions {
            let state = match &r.outcome {
                SessionOutcome::Complete(_) => "complete".to_string(),
                SessionOutcome::Degraded { .. } => "degraded".to_string(),
                SessionOutcome::Evicted(reason) => format!("evicted({reason:?})"),
                SessionOutcome::Failed(e) => format!("failed({e})"),
            };
            let _ = writeln!(
                s,
                "  {} {:<21} {:<10} rounds={} cost={:>6} latency={:>3} {}",
                r.id,
                r.scenario.name(),
                state,
                r.rounds_run,
                r.cost_spent,
                r.latency_ticks(),
                if r.truncated { "[truncated]" } else { "" }
            );
        }
        s
    }
}

/// Where a live session is in its protocol.
enum Phase<'a, I: KnnIndex> {
    /// Feedback rounds in progress. Boxed: the stepper (marks, per-round
    /// state) dwarfs the other variants, and the phase moves through
    /// worker threads every tick.
    Feedback(Box<FeedbackStepper<'a, RfsStructure<I>>>),
    /// Feedback done; the final localized k-NN is the next step.
    Final(FeedbackRounds),
    /// Terminal; never scheduled again.
    Done,
}

/// The per-session state that lives inside the scheduler's active slots and
/// travels through the parallel step workers.
struct Body<'a, I: KnnIndex> {
    user: SimulatedUser,
    phase: Phase<'a, I>,
    /// The snapshot this session was promoted against. Every step of the
    /// session — feedback rounds and the final k-NN — runs against this
    /// reference, so a snapshot swap mid-run never changes an in-flight
    /// session's answer (DESIGN.md §14).
    rfs: &'a RfsStructure<I>,
    truncated: bool,
    rounds_run: usize,
}

/// One entry of a tick's step batch: session id, its spec, cost spent so
/// far, and the body handed to the worker (behind a `Mutex` so the fan-out
/// can move it out on panic-free completion).
type BatchEntry<'a, I> = (u64, &'a SessionSpec, u64, Mutex<Option<Body<'a, I>>>);

/// What one scheduler step produced.
enum StepEvent {
    /// More steps needed.
    Continue,
    /// The session reached an engine-terminal state.
    Finished(Result<ServedOutcome, QdError>),
}

/// One worker-side step result: the session state handed back, the event,
/// and the step's private trace.
struct WorkOut<'a, I: KnnIndex> {
    body: Body<'a, I>,
    event: StepEvent,
    trace: qd_obs::Trace,
}

/// Supervisor-side ledger for one admitted session.
struct Meta {
    spec_index: usize,
    state: SessionState,
    spent: u64,
    rounds_run: usize,
    truncated: bool,
    trace: qd_obs::Trace,
}

/// Deterministic cost of one step, in the contract's cost units.
fn step_cost(trace: &qd_obs::Trace) -> u64 {
    let get = |name: &str| trace.counters.get(name).copied().unwrap_or(0);
    get(qd_obs::ctr::SESSION_DISPLAYS) + get(qd_obs::ctr::KNN_DISTANCE)
}

/// Merges one step's trace into a session's accumulated trace: counters
/// add, histograms concatenate, and the step's spans append in step order.
fn merge_trace(acc: &mut qd_obs::Trace, step: qd_obs::Trace) {
    for (name, value) in step.counters {
        *acc.counters.entry(name).or_default() += value;
    }
    for (name, hist) in step.hists {
        acc.hists.entry(name).or_default().merge(&hist);
    }
    for (name, value) in step.root.counters {
        *acc.root.counters.entry(name).or_default() += value;
    }
    acc.root.children.extend(step.root.children);
}

/// Advances one session by one scheduler step: one feedback round, the
/// deadline truncation, or the final localized k-NN. Runs on a worker
/// thread, inside the session's private recorder (and fault plan, when it
/// has one), so everything it observes lands in the session's own trace.
fn step_session<'a, I: KnnIndex + Sync>(
    corpus: &Corpus,
    spec: &SessionSpec,
    spent: u64,
    body: &mut Body<'a, I>,
) -> StepEvent {
    let rfs = body.rfs;
    match std::mem::replace(&mut body.phase, Phase::Done) {
        Phase::Feedback(mut stepper) => {
            let over_deadline = spec.deadline.is_some_and(|d| spent >= d);
            if over_deadline && !stepper.is_done() {
                // Deadline enforcement: promote the best-so-far marks and
                // skip the remaining rounds.
                stepper.truncate();
                body.truncated = true;
            } else {
                stepper.step_round(&mut body.user);
            }
            body.rounds_run = stepper.rounds_run();
            body.phase = if stepper.is_done() {
                Phase::Final(stepper.finish())
            } else {
                Phase::Feedback(stepper)
            };
            StepEvent::Continue
        }
        Phase::Final(rounds) => {
            // The final k-NN runs on whatever deadline budget remains,
            // folded into the engine's anytime distance-budget path.
            let mut cfg = spec.cfg.clone();
            if let Some(deadline) = spec.deadline {
                let remaining = deadline.saturating_sub(spent);
                cfg.distance_budget = Some(match cfg.distance_budget {
                    Some(budget) => budget.min(remaining),
                    None => remaining,
                });
            }
            let result = try_execute_subqueries(corpus, rfs, &rounds.final_marks, spec.k, &cfg)
                .map(|execution| assemble_outcome(corpus, &spec.query, &cfg, &rounds, execution));
            StepEvent::Finished(result)
        }
        Phase::Done => {
            panic!("supervisor stepped a terminal session (scheduler invariant broken)")
        }
    }
}

/// The multi-tenant session server: a shared immutable snapshot plus a
/// scheduler configuration. `run` is a pure function of the load plan (and
/// the ambient fault plan, if one is installed).
///
/// Generic over the index type behind the RFS snapshot: the default
/// `RStarTree` serves a monolithic arena, while `qd-shard`'s `ShardSet`
/// serves a partitioned corpus through the same scheduler unchanged.
pub struct Server<I: KnnIndex + Sync = RStarTree> {
    corpus: Arc<Corpus>,
    rfs: Arc<RfsStructure<I>>,
    cfg: ServeConfig,
}

impl<I: KnnIndex + Sync> Server<I> {
    /// A server over a shared corpus + RFS snapshot.
    pub fn new(corpus: Arc<Corpus>, rfs: Arc<RfsStructure<I>>, cfg: ServeConfig) -> Self {
        assert!(cfg.max_active >= 1, "at least one active slot required");
        Server { corpus, rfs, cfg }
    }

    /// Drives every session in `plan` to a terminal state and reports.
    pub fn run(&self, plan: &LoadPlan) -> ServeReport {
        self.run_with_swaps(plan, &[])
    }

    /// Like [`Server::run`], but publishes replacement snapshots mid-run:
    /// at each `(tick, snapshot)` pair (ascending by tick) the active
    /// snapshot is swapped before that tick's promotions, so sessions
    /// promoted afterwards run against the new snapshot while every
    /// in-flight session keeps the reference it captured at promotion —
    /// the copy-on-write contract of DESIGN.md §14.
    pub fn run_with_swaps(
        &self,
        plan: &LoadPlan,
        swaps: &[(u64, Arc<RfsStructure<I>>)],
    ) -> ServeReport {
        assert!(
            swaps.windows(2).all(|w| w[0].0 <= w[1].0),
            "snapshot swaps must be ascending by tick"
        );
        qd_obs::span(qd_obs::sp::SERVE_RUN, || self.run_inner(plan, swaps))
    }

    fn run_inner<'a>(
        &'a self,
        plan: &LoadPlan,
        swaps: &'a [(u64, Arc<RfsStructure<I>>)],
    ) -> ServeReport {
        let corpus: &Corpus = &self.corpus;
        let mut rfs: &'a RfsStructure<I> = &self.rfs;
        let mut next_swap = 0usize;
        let cfg = &self.cfg;

        // Arrival order: (tick, id). The generator already emits this order,
        // but re-sorting makes hand-built plans equally valid.
        let mut order: Vec<usize> = (0..plan.specs.len()).collect();
        order.sort_by_key(|&i| (plan.specs[i].arrival_tick, plan.specs[i].id));
        let mut arrivals: VecDeque<usize> = order.into();

        let mut metas: BTreeMap<u64, Meta> = BTreeMap::new();
        let mut bodies: BTreeMap<u64, Body<'_, I>> = BTreeMap::new();
        let mut rr: VecDeque<u64> = VecDeque::new(); // active, round-robin order
        let mut queue: VecDeque<u64> = VecDeque::new(); // admitted, waiting
        let mut reports: BTreeMap<u64, SessionReport> = BTreeMap::new();

        let mut tick: u64 = 0;
        loop {
            if arrivals.is_empty() && rr.is_empty() && queue.is_empty() {
                break;
            }
            if tick >= cfg.max_ticks {
                self.stall_out(plan, arrivals, rr, queue, &mut metas, &mut reports, tick);
                break;
            }
            // Nothing live and the next arrival is in the future: skip ahead.
            if rr.is_empty() && queue.is_empty() {
                if let Some(&next) = arrivals.front() {
                    let next_tick = plan.specs[next].arrival_tick;
                    if next_tick > tick {
                        tick = next_tick.min(cfg.max_ticks);
                        continue;
                    }
                }
            }

            // 0. Snapshot publication: swaps due at this tick take effect
            //    before promotion, so newly promoted sessions capture the
            //    fresh snapshot and in-flight ones keep theirs.
            while swaps.get(next_swap).is_some_and(|(t, _)| *t <= tick) {
                rfs = &swaps[next_swap].1;
                next_swap += 1;
                qd_obs::count(qd_obs::ctr::SERVE_SWAPS, 1);
            }

            // 1. Admission: everyone whose arrival tick has come.
            while let Some(&idx) = arrivals.front() {
                if plan.specs[idx].arrival_tick > tick {
                    break;
                }
                arrivals.pop_front();
                self.admit(
                    plan,
                    idx,
                    tick,
                    &mut metas,
                    &mut rr,
                    &mut queue,
                    &mut reports,
                );
            }

            // 2. Promotion: fill free active slots from the wait queue.
            while rr.len() < cfg.max_active {
                let Some(id) = queue.pop_front() else { break };
                if let Some(meta) = metas.get_mut(&id) {
                    meta.state = SessionState::Active;
                    let spec = &plan.specs[meta.spec_index];
                    bodies.insert(
                        id,
                        Body {
                            user: spec.user(),
                            phase: Phase::Feedback(Box::new(FeedbackStepper::new(
                                rfs,
                                corpus.labels(),
                                spec.cfg.clone(),
                            ))),
                            rfs,
                            truncated: false,
                            rounds_run: 0,
                        },
                    );
                    rr.push_back(id);
                }
            }

            // 3. Pick this tick's batch, applying forced evictions at the
            //    door of the turn.
            let batch_size = cfg.step_batch.min(rr.len());
            let mut handles: Vec<BatchEntry<'_, I>> = Vec::new();
            for _ in 0..batch_size {
                let Some(id) = rr.pop_front() else { break };
                if qd_fault::fire_keyed(qd_fault::site::SERVE_EVICT, id).is_some() {
                    bodies.remove(&id);
                    qd_obs::count(qd_obs::ctr::SERVE_EVICTED, 1);
                    self.finalize(
                        plan,
                        id,
                        SessionOutcome::Evicted(EvictReason::Operator),
                        tick,
                        &mut metas,
                        &mut reports,
                    );
                    continue;
                }
                let Some(body) = bodies.remove(&id) else {
                    continue;
                };
                let Some(meta) = metas.get(&id) else { continue };
                handles.push((
                    id,
                    &plan.specs[meta.spec_index],
                    meta.spent,
                    Mutex::new(Some(body)),
                ));
            }

            // 4. Step the batch in parallel; process results in input order.
            if !handles.is_empty() {
                qd_obs::span_indexed(qd_obs::sp::SERVE_TICK, tick, || {
                    qd_obs::count(qd_obs::ctr::SERVE_STEPS, handles.len() as u64);
                    qd_obs::observe(qd_obs::hist::SERVE_TICK_STEPS, handles.len() as u64);
                    let outs = qd_runtime::par_try_map(&handles, |(id, spec, spent, slot)| {
                        let mut guard = match slot.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        let mut body = guard.take()?;
                        drop(guard);
                        let mut step = || {
                            qd_obs::with_recorder(|| {
                                // Failpoint: this session's step is poisoned.
                                // The panic is caught by par_try_map; the
                                // session body (and its in-flight state) dies
                                // with it.
                                if qd_fault::fire_keyed(qd_fault::site::SERVE_STEP_PANIC, *id)
                                    .is_some()
                                {
                                    panic!("injected fault: poisoned step of session {id}");
                                }
                                step_session(corpus, spec, *spent, &mut body)
                            })
                        };
                        let (event, trace) = match &spec.fault_plan {
                            Some(plan) => qd_fault::with_plan(plan, step),
                            None => step(),
                        };
                        Some(WorkOut { body, event, trace })
                    });
                    for ((id, spec, _, _), out) in handles.iter().zip(outs) {
                        self.process_step(
                            plan,
                            *id,
                            spec,
                            out,
                            tick,
                            &mut metas,
                            &mut bodies,
                            &mut rr,
                            &mut reports,
                        );
                    }
                });
            }

            tick += 1;
        }

        debug_assert_eq!(reports.len(), plan.specs.len(), "a session went missing");
        ServeReport {
            sessions: reports.into_values().collect(),
            ticks: tick,
        }
    }

    /// Admission control: failpoint rejection, then slot/queue placement,
    /// then the seeded overload coin.
    #[allow(clippy::too_many_arguments)] // ALLOW: supervisor plumbing — the alternatives (a context struct per call) obscure the scheduler loop.
    fn admit(
        &self,
        plan: &LoadPlan,
        spec_index: usize,
        tick: u64,
        metas: &mut BTreeMap<u64, Meta>,
        rr: &mut VecDeque<u64>,
        queue: &mut VecDeque<u64>,
        reports: &mut BTreeMap<u64, SessionReport>,
    ) {
        let spec = &plan.specs[spec_index];
        let id = spec.id.0;
        // Failpoint: admission rejects this session at the door.
        if qd_fault::fire_keyed(qd_fault::site::SERVE_ADMISSION, id).is_some() {
            qd_obs::count(qd_obs::ctr::SERVE_SHED, 1);
            reports.insert(
                id,
                self.door_report(spec, EvictReason::AdmissionFault, tick),
            );
            return;
        }
        let admit_to_queue = |metas: &mut BTreeMap<u64, Meta>, queue: &mut VecDeque<u64>| {
            metas.insert(
                id,
                Meta {
                    spec_index,
                    state: SessionState::Admitted,
                    spent: 0,
                    rounds_run: 0,
                    truncated: false,
                    trace: qd_obs::Trace::default(),
                },
            );
            queue.push_back(id);
            qd_obs::count(qd_obs::ctr::SERVE_ADMITTED, 1);
        };
        if rr.len() + queue.len() < self.cfg.max_active + self.cfg.queue_capacity {
            admit_to_queue(metas, queue);
            return;
        }
        // Overload: a seeded coin (pure function of shed seed and session
        // id) decides whether the newcomer or the oldest queued session is
        // shed — deterministic at any thread count or arrival interleaving.
        qd_obs::count(qd_obs::ctr::SERVE_SHED, 1);
        if mix64(self.cfg.shed_seed ^ mix64(id)) & 1 == 0 || queue.is_empty() {
            reports.insert(id, self.door_report(spec, EvictReason::Shed, tick));
        } else if let Some(victim) = queue.pop_front() {
            metas.remove(&victim);
            if let Some(victim_spec) = plan.specs.iter().find(|s| s.id.0 == victim) {
                reports.insert(
                    victim,
                    self.door_report(victim_spec, EvictReason::Shed, tick),
                );
            }
            admit_to_queue(metas, queue);
        }
    }

    /// A report for a session shed before it ever held an active slot.
    fn door_report(&self, spec: &SessionSpec, reason: EvictReason, tick: u64) -> SessionReport {
        SessionReport {
            id: spec.id,
            scenario: spec.scenario,
            outcome: SessionOutcome::Evicted(reason),
            rounds_run: 0,
            truncated: false,
            cost_spent: 0,
            arrival_tick: spec.arrival_tick,
            finished_tick: tick,
            trace: qd_obs::Trace::default(),
        }
    }

    /// Folds one step result back into the scheduler state.
    #[allow(clippy::too_many_arguments)] // ALLOW: supervisor plumbing — the alternatives (a context struct per call) obscure the scheduler loop.
    fn process_step<'a>(
        &self,
        plan: &LoadPlan,
        id: u64,
        spec: &SessionSpec,
        out: Result<Option<WorkOut<'a, I>>, qd_runtime::TaskPanic>,
        tick: u64,
        metas: &mut BTreeMap<u64, Meta>,
        bodies: &mut BTreeMap<u64, Body<'a, I>>,
        rr: &mut VecDeque<u64>,
        reports: &mut BTreeMap<u64, SessionReport>,
    ) {
        match out {
            Err(panic) => {
                // The step panicked: the session is poisoned and its body
                // died inside the worker. Quarantine it — the neighbors'
                // results in this very batch are processed untouched.
                qd_obs::count(qd_obs::ctr::SERVE_EVICTED, 1);
                self.finalize(
                    plan,
                    id,
                    SessionOutcome::Evicted(EvictReason::Poisoned(panic.message)),
                    tick,
                    metas,
                    reports,
                );
            }
            Ok(None) => unreachable!("step slot emptied by someone other than its worker"),
            Ok(Some(work)) => {
                let (truncated, rounds_run) = {
                    let Some(meta) = metas.get_mut(&id) else {
                        unreachable!("stepped session without a ledger entry")
                    };
                    meta.spent += step_cost(&work.trace);
                    merge_trace(&mut meta.trace, work.trace);
                    meta.rounds_run = work.body.rounds_run;
                    if work.body.truncated && !meta.truncated {
                        meta.truncated = true;
                        qd_obs::count(qd_obs::ctr::SERVE_TRUNCATIONS, 1);
                    }
                    (meta.truncated, meta.rounds_run)
                };
                match work.event {
                    StepEvent::Continue => {
                        bodies.insert(id, work.body);
                        rr.push_back(id);
                    }
                    StepEvent::Finished(result) => {
                        let outcome = classify(spec, truncated, rounds_run, result);
                        self.finalize(plan, id, outcome, tick, metas, reports);
                    }
                }
            }
        }
    }

    /// Retires an admitted session: ledger out, report in, histograms fed.
    fn finalize(
        &self,
        plan: &LoadPlan,
        id: u64,
        outcome: SessionOutcome,
        tick: u64,
        metas: &mut BTreeMap<u64, Meta>,
        reports: &mut BTreeMap<u64, SessionReport>,
    ) {
        let Some(meta) = metas.remove(&id) else {
            unreachable!("finalized a session without a ledger entry")
        };
        debug_assert!(
            matches!(meta.state, SessionState::Admitted | SessionState::Active),
            "finalized a session in a terminal state"
        );
        let spec = &plan.specs[meta.spec_index];
        let report = SessionReport {
            id: spec.id,
            scenario: spec.scenario,
            outcome,
            rounds_run: meta.rounds_run,
            truncated: meta.truncated,
            cost_spent: meta.spent,
            arrival_tick: spec.arrival_tick,
            finished_tick: tick,
            trace: meta.trace,
        };
        qd_obs::observe(qd_obs::hist::SERVE_LATENCY_TICKS, report.latency_ticks());
        qd_obs::observe(qd_obs::hist::SERVE_COST_UNITS, report.cost_spent);
        reports.insert(id, report);
    }

    /// Tick-limit watchdog: every unfinished session (active, queued, or
    /// not yet arrived) is retired as stalled so the report always covers
    /// the whole plan.
    #[allow(clippy::too_many_arguments)] // ALLOW: supervisor plumbing — the alternatives (a context struct per call) obscure the scheduler loop.
    fn stall_out(
        &self,
        plan: &LoadPlan,
        arrivals: VecDeque<usize>,
        rr: VecDeque<u64>,
        queue: VecDeque<u64>,
        metas: &mut BTreeMap<u64, Meta>,
        reports: &mut BTreeMap<u64, SessionReport>,
        tick: u64,
    ) {
        for id in rr.into_iter().chain(queue) {
            qd_obs::count(qd_obs::ctr::SERVE_EVICTED, 1);
            self.finalize(
                plan,
                id,
                SessionOutcome::Evicted(EvictReason::Stalled),
                tick,
                metas,
                reports,
            );
        }
        for idx in arrivals {
            let spec = &plan.specs[idx];
            qd_obs::count(qd_obs::ctr::SERVE_EVICTED, 1);
            reports.insert(
                spec.id.0,
                self.door_report(spec, EvictReason::Stalled, tick),
            );
        }
    }
}

/// Maps an engine-terminal result to the session's outcome, folding the
/// serving deadline's truncation into the degradation report.
fn classify(
    spec: &SessionSpec,
    truncated: bool,
    rounds_run: usize,
    result: Result<ServedOutcome, QdError>,
) -> SessionOutcome {
    match result {
        Err(e) => SessionOutcome::Failed(e),
        Ok(served) => {
            let rounds_truncated = spec.cfg.rounds.saturating_sub(rounds_run);
            match served {
                ServedOutcome::Complete(outcome) if truncated => SessionOutcome::Degraded {
                    outcome,
                    report: Degradation {
                        rounds_truncated,
                        ..Degradation::default()
                    },
                },
                ServedOutcome::Complete(outcome) => SessionOutcome::Complete(outcome),
                ServedOutcome::Degraded {
                    outcome,
                    mut report,
                } => {
                    if truncated {
                        report.rounds_truncated = rounds_truncated;
                    }
                    SessionOutcome::Degraded { outcome, report }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{LoadConfig, Scenario};
    use qd_core::rfs::RfsConfig;
    use qd_corpus::CorpusConfig;
    use qd_fault::{FaultPlan, Mode};
    use std::sync::OnceLock;

    fn fixture() -> (Arc<Corpus>, Arc<RfsStructure>) {
        static FIXTURE: OnceLock<(Arc<Corpus>, Arc<RfsStructure>)> = OnceLock::new();
        FIXTURE
            .get_or_init(|| {
                let corpus = Corpus::build(&CorpusConfig {
                    size: 200,
                    image_size: 16,
                    seed: 11,
                    filler_count: 3,
                    with_viewpoints: false,
                });
                let rfs = RfsStructure::build(corpus.features(), &RfsConfig::test_small());
                (Arc::new(corpus), Arc::new(rfs))
            })
            .clone()
    }

    fn server(cfg: ServeConfig) -> Server {
        let (corpus, rfs) = fixture();
        Server::new(corpus, rfs, cfg)
    }

    fn plan(users: usize) -> LoadPlan {
        let (corpus, _) = fixture();
        LoadPlan::generate(
            &corpus,
            &LoadConfig {
                users,
                ..LoadConfig::default()
            },
        )
    }

    fn is_terminal(outcome: &SessionOutcome) -> bool {
        matches!(
            outcome.state(),
            SessionState::Complete
                | SessionState::Degraded
                | SessionState::Evicted
                | SessionState::Failed
        )
    }

    #[test]
    fn every_session_reaches_a_terminal_state() {
        let srv = server(ServeConfig::default());
        let p = plan(12);
        let report = srv.run(&p);
        assert_eq!(report.sessions.len(), 12);
        for s in &report.sessions {
            assert!(is_terminal(&s.outcome), "{} not terminal", s.id);
        }
        assert!(report.ticks < ServeConfig::default().max_ticks);
    }

    #[test]
    fn runs_are_byte_identical() {
        let srv = server(ServeConfig::default());
        let p = plan(10);
        let a = srv.run(&p);
        let b = srv.run(&p);
        assert_eq!(a.summary(), b.summary());
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.fingerprint(), y.fingerprint());
        }
    }

    /// The isolation property: every session's outcome and trace are
    /// byte-identical whether it runs alone or among eleven neighbors.
    #[test]
    fn solo_and_interleaved_sessions_match() {
        let srv = server(ServeConfig::default());
        let p = plan(12);
        let together = srv.run(&p);
        for spec in &p.specs {
            let solo_plan = p.solo(spec.id).expect("spec exists");
            let solo = srv.run(&solo_plan);
            let a = together.session(spec.id).expect("in multi report");
            let b = solo.session(spec.id).expect("in solo report");
            assert_eq!(a.fingerprint(), b.fingerprint(), "session {}", spec.id);
        }
    }

    #[test]
    fn overload_sheds_deterministically_and_reports_everyone() {
        let cfg = ServeConfig {
            max_active: 2,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let srv = server(cfg.clone());
        let (corpus, _) = fixture();
        let p = LoadPlan::generate(
            &corpus,
            &LoadConfig {
                users: 12,
                arrivals_per_tick: 6,
                ..LoadConfig::default()
            },
        );
        let a = srv.run(&p);
        let b = srv.run(&p);
        assert_eq!(a.sessions.len(), 12);
        assert!(!a.shed_ids().is_empty(), "burst should overload the queue");
        assert_eq!(a.shed_ids(), b.shed_ids());
        assert_eq!(a.evicted_ids(), b.evicted_ids());
        for s in &a.sessions {
            assert!(is_terminal(&s.outcome));
        }
    }

    #[test]
    fn poisoned_session_is_quarantined_and_neighbors_unaffected() {
        let srv = server(ServeConfig::default());
        let clean_plan = plan(8);
        let mut poisoned_plan = clean_plan.clone();
        poisoned_plan.specs[3].fault_plan =
            Some(FaultPlan::new(1).site(qd_fault::site::SERVE_STEP_PANIC, Mode::Always));
        let clean = srv.run(&clean_plan);
        let poisoned = srv.run(&poisoned_plan);
        let victim = poisoned.session(SessionId(3)).expect("victim report");
        match &victim.outcome {
            SessionOutcome::Evicted(EvictReason::Poisoned(msg)) => {
                assert!(msg.contains("injected fault"), "message: {msg}");
            }
            other => panic!("victim should be poisoned, got {:?}", other.state()),
        }
        for spec in &clean_plan.specs {
            if spec.id == SessionId(3) {
                continue;
            }
            let a = clean.session(spec.id).expect("clean report");
            let b = poisoned.session(spec.id).expect("poisoned-run report");
            assert_eq!(a.fingerprint(), b.fingerprint(), "neighbor {}", spec.id);
        }
    }

    #[test]
    fn deadline_truncates_to_a_valid_best_so_far_prefix() {
        let srv = server(ServeConfig::default());
        let mut p = plan(4);
        // Find a cooperative session and give it a deadline it must bust
        // after roughly one round of displays.
        let idx = p
            .specs
            .iter()
            .position(|s| matches!(s.scenario, Scenario::Cooperative))
            .expect("matrix includes a cooperative session");
        p.specs[idx].deadline = Some(30);
        let id = p.specs[idx].id;
        let report = srv.run(&p);
        let s = report.session(id).expect("report exists");
        assert!(s.truncated, "deadline should truncate the session");
        assert!(s.rounds_run < p.specs[idx].cfg.rounds);
        match &s.outcome {
            SessionOutcome::Degraded { outcome, report } => {
                assert!(report.rounds_truncated > 0);
                assert!(outcome.results.len() <= p.specs[idx].k);
            }
            other => panic!("truncated session should degrade, got {:?}", other.state()),
        }
    }

    #[test]
    fn admission_failpoint_sheds_at_the_door() {
        let srv = server(ServeConfig::default());
        let p = plan(6);
        let chaos = FaultPlan::new(2).site(qd_fault::site::SERVE_ADMISSION, Mode::Always);
        let report = qd_fault::with_plan(&chaos, || srv.run(&p));
        assert_eq!(report.shed_ids().len(), 6);
        for s in &report.sessions {
            assert!(matches!(
                &s.outcome,
                SessionOutcome::Evicted(EvictReason::AdmissionFault)
            ));
        }
    }

    #[test]
    fn operator_eviction_is_deterministic_under_a_seeded_plan() {
        let srv = server(ServeConfig::default());
        let p = plan(10);
        let chaos = FaultPlan::new(3).site(qd_fault::site::SERVE_EVICT, Mode::Probability(0.4));
        let a = qd_fault::with_plan(&chaos, || srv.run(&p));
        let b = qd_fault::with_plan(&chaos, || srv.run(&p));
        assert!(!a.evicted_ids().is_empty(), "p=0.4 should evict someone");
        assert_eq!(a.evicted_ids(), b.evicted_ids());
        for s in &a.sessions {
            assert!(is_terminal(&s.outcome));
        }
    }

    #[test]
    fn tick_watchdog_stalls_out_everything_left() {
        let cfg = ServeConfig {
            max_ticks: 1,
            ..ServeConfig::default()
        };
        let srv = server(cfg);
        let report = srv.run(&plan(6));
        assert_eq!(report.sessions.len(), 6);
        assert!(report
            .sessions
            .iter()
            .any(|s| matches!(&s.outcome, SessionOutcome::Evicted(EvictReason::Stalled))));
        for s in &report.sessions {
            assert!(is_terminal(&s.outcome));
        }
    }
}
