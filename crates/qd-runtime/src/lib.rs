#![warn(missing_docs)]

//! Deterministic parallel execution for the Query Decomposition engine.
//!
//! The paper's workloads are embarrassingly parallel at three layers — the
//! final round's localized subqueries are independent (§3.3–3.4), MV's four
//! viewpoint k-NNs are independent, and the benchmark harness evaluates
//! independent queries — so this crate provides a tiny executor built on
//! [`std::thread::scope`] with one hard guarantee:
//!
//! **Determinism contract.** [`par_map`] returns results in input order, and
//! every closure must depend only on its own item (seeding any RNG it uses
//! from the item or its index). Under that discipline the output is
//! bit-identical for every worker count, so `QD_THREADS=1` and
//! `QD_THREADS=8` produce byte-identical CSVs, rankings, and access counts —
//! enforced by `tests/parallel_equivalence.rs`.
//!
//! Worker count resolution order:
//! 1. an in-process [`with_threads`] override (used by tests),
//! 2. the `QD_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Environment variable forcing the worker count (`QD_THREADS=1` forces a
/// fully sequential run for reproducibility baselines).
pub const THREADS_ENV: &str = "QD_THREADS";

/// The worker count [`par_map`] will use right now.
pub fn threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Runs `f` with the worker count pinned to `n` on this thread (and every
/// [`par_map`] it calls directly). Restores the previous setting afterwards,
/// panic or not. Tests use this instead of mutating the process-global
/// environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Maps `f` over `items` on up to [`threads`] scoped workers, returning the
/// results **in input order**. Workers self-schedule one item at a time off a
/// shared counter, so heterogeneous per-item costs balance well; the output
/// order never depends on scheduling. A panic in any closure propagates to
/// the caller with its original payload.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] where the closure also receives the item's input index —
/// the hook for per-item RNG seeding (`seed + i`), which is what keeps
/// parallel output identical to sequential output.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, U)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for part in parts {
        for (i, v) in part {
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index scheduled exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn order_holds_under_skewed_workloads() {
        // Early items sleep, late items finish instantly: completion order
        // is far from input order, the output must not be.
        let items: Vec<usize> = (0..32).collect();
        let out = with_threads(8, || {
            par_map(&items, |&x| {
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x
            })
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn fewer_items_than_workers() {
        let items = vec![10u64, 20];
        let out = with_threads(8, || par_map(&items, |&x| x + 1));
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn honors_single_thread_override() {
        // With one worker the map runs inline on the calling thread.
        let caller = std::thread::current().id();
        let items: Vec<usize> = (0..16).collect();
        let out = with_threads(1, || {
            par_map(&items, |&x| {
                assert_eq!(std::thread::current().id(), caller);
                x
            })
        });
        assert_eq!(out, items);
    }

    #[test]
    fn with_threads_restores_previous_setting() {
        let before = threads();
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(1, || assert_eq!(threads(), 1));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), before);
    }

    #[test]
    fn propagates_panics() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |&x| {
                    if x == 33 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 33"), "payload was {msg:?}");
    }

    #[test]
    fn indexed_variant_passes_the_input_index() {
        let items = vec!["a", "b", "c"];
        let out = par_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }
}
