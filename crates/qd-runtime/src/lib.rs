#![warn(missing_docs)]

//! Deterministic parallel execution for the Query Decomposition engine.
//!
//! The paper's workloads are embarrassingly parallel at three layers — the
//! final round's localized subqueries are independent (§3.3–3.4), MV's four
//! viewpoint k-NNs are independent, and the benchmark harness evaluates
//! independent queries — so this crate provides a tiny executor built on
//! [`std::thread::scope`] with one hard guarantee:
//!
//! **Determinism contract.** [`par_map`] returns results in input order, and
//! every closure must depend only on its own item (seeding any RNG it uses
//! from the item or its index). Under that discipline the output is
//! bit-identical for every worker count, so `QD_THREADS=1` and
//! `QD_THREADS=8` produce byte-identical CSVs, rankings, and access counts —
//! enforced by `tests/parallel_equivalence.rs`.
//!
//! Worker count resolution order:
//! 1. an in-process [`with_threads`] override (used by tests),
//! 2. the `QD_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Environment variable forcing the worker count (`QD_THREADS=1` forces a
/// fully sequential run for reproducibility baselines).
pub const THREADS_ENV: &str = "QD_THREADS";

/// The worker count [`par_map`] will use right now.
pub fn threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Runs `f` with the worker count pinned to `n` on this thread (and every
/// [`par_map`] it calls directly). Restores the previous setting afterwards,
/// panic or not. Tests use this instead of mutating the process-global
/// environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Maps `f` over `items` on up to [`threads`] scoped workers, returning the
/// results **in input order**. Workers self-schedule one item at a time off a
/// shared counter, so heterogeneous per-item costs balance well; the output
/// order never depends on scheduling. A panic in any closure propagates to
/// the caller with its original payload.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] where the closure also receives the item's input index —
/// the hook for per-item RNG seeding (`seed + i`), which is what keeps
/// parallel output identical to sequential output.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    scatter_gather(n, workers, |i| f(i, &items[i]))
}

/// A panic caught from a single task by [`par_try_map`], carrying the task's
/// input index and the panic message (stringified payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input index of the task that panicked.
    pub index: usize,
    /// The panic payload rendered as a string (`&str`/`String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`par_map`] with per-task panic isolation: each closure runs under
/// `catch_unwind`, and the result vector — still **in input order** — holds
/// `Err(TaskPanic)` for tasks that panicked instead of tearing down the whole
/// fan-out. One bad item degrades one slot; the caller decides whether that
/// is fatal.
pub fn par_try_map<T, U, F>(items: &[T], f: F) -> Vec<Result<U, TaskPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_try_map_indexed(items, |_, item| f(item))
}

/// [`par_try_map`] where the closure also receives the item's input index.
pub fn par_try_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<Result<U, TaskPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let task = |i: usize| {
        catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))).map_err(|payload| TaskPanic {
            index: i,
            message: panic_message(payload.as_ref()),
        })
    };
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return (0..n).map(task).collect();
    }
    scatter_gather(n, workers, task)
}

/// Shared fan-out core: runs `task(i)` for `i in 0..n` on `workers` scoped
/// threads (self-scheduling off an atomic counter) and returns the results in
/// input order. Captures the caller's active fault plan and observability
/// recorder, if any: the plan is installed in every worker so `qd_fault`
/// failpoints keep firing deterministically across the thread boundary, and
/// each task runs under a *fresh* `qd_obs` recorder whose trace is absorbed
/// back into the caller in input order after the join — so the merged trace
/// is byte-identical to a sequential run at every worker count.
fn scatter_gather<U, F>(n: usize, workers: usize, task: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let plan = qd_fault::current();
    let obs = qd_obs::current();
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, U, Option<qd_obs::Trace>)>> = thread::scope(|s| {
        let next = &next;
        let task = &task;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let plan = plan.clone();
                s.spawn(move || {
                    qd_fault::with_current(plan, || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (value, trace) = qd_obs::observe_task(&obs, || task(i));
                            local.push((i, value, trace));
                        }
                        local
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    let mut out: Vec<Option<(U, Option<qd_obs::Trace>)>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for part in parts {
        for (i, v, t) in part {
            out[i] = Some((v, t));
        }
    }
    out.into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some((v, trace)) => {
                // Input-order merge on the calling thread — the step that
                // makes parallel traces byte-identical to sequential ones.
                if let Some(trace) = trace {
                    qd_obs::absorb(trace);
                }
                v
            }
            None => unreachable!("index {i} scheduled exactly once"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn order_holds_under_skewed_workloads() {
        // Early items sleep, late items finish instantly: completion order
        // is far from input order, the output must not be.
        let items: Vec<usize> = (0..32).collect();
        let out = with_threads(8, || {
            par_map(&items, |&x| {
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x
            })
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn fewer_items_than_workers() {
        let items = vec![10u64, 20];
        let out = with_threads(8, || par_map(&items, |&x| x + 1));
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn honors_single_thread_override() {
        // With one worker the map runs inline on the calling thread.
        let caller = std::thread::current().id();
        let items: Vec<usize> = (0..16).collect();
        let out = with_threads(1, || {
            par_map(&items, |&x| {
                assert_eq!(std::thread::current().id(), caller);
                x
            })
        });
        assert_eq!(out, items);
    }

    #[test]
    fn with_threads_restores_previous_setting() {
        let before = threads();
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(1, || assert_eq!(threads(), 1));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), before);
    }

    #[test]
    fn propagates_panics() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |&x| {
                    if x == 33 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 33"), "payload was {msg:?}");
    }

    #[test]
    fn indexed_variant_passes_the_input_index() {
        let items = vec!["a", "b", "c"];
        let out = par_map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn try_map_isolates_panics_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [1, 4] {
            let out = with_threads(workers, || {
                par_try_map(&items, |&x| {
                    if x % 13 == 5 {
                        panic!("injected {x}");
                    }
                    x * 2
                })
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 13 == 5 {
                    let e = r.as_ref().expect_err("task should have panicked");
                    assert_eq!(e.index, i);
                    assert_eq!(e.message, format!("injected {i}"));
                } else {
                    assert_eq!(r.as_ref().copied(), Ok(i * 2));
                }
            }
        }
    }

    #[test]
    fn try_map_results_identical_across_worker_counts() {
        let items: Vec<usize> = (0..40).collect();
        let run = |workers| {
            with_threads(workers, || {
                par_try_map(&items, |&x| if x % 7 == 0 { panic!("p{x}") } else { x })
            })
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn traces_are_identical_across_worker_counts() {
        let items: Vec<u64> = (0..40).collect();
        let run = |workers| {
            with_threads(workers, || {
                qd_obs::with_recorder(|| {
                    qd_obs::span("batch", || {
                        par_map(&items, |&x| {
                            qd_obs::span_indexed("item", x, || {
                                qd_obs::count("work.units", x + 1);
                                x * 2
                            })
                        })
                    })
                })
            })
        };
        let (out1, trace1) = run(1);
        let (out8, trace8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(trace1, trace8);
        assert_eq!(trace1.render(), trace8.render());
        assert_eq!(trace1.counters["work.units"], (1..=40).sum::<u64>());
        // Item spans grafted in input order under the batch span.
        let batch = &trace1.root.children[0];
        assert_eq!(batch.children.len(), 40);
        for (i, child) in batch.children.iter().enumerate() {
            assert_eq!(child.index, Some(i as u64));
        }
    }

    #[test]
    fn histograms_merge_in_input_order_across_worker_counts() {
        let items: Vec<u64> = (0..40).collect();
        let run = |workers| {
            with_threads(workers, || {
                qd_obs::with_recorder(|| {
                    par_map(&items, |&x| {
                        qd_obs::observe("t.latency", x * 3);
                        x
                    })
                })
            })
        };
        let (out1, trace1) = run(1);
        let (out8, trace8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(trace1, trace8);
        // Observations land in input order, not completion order.
        let hist = &trace1.hists["t.latency"];
        let expected: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(hist.values(), expected.as_slice());
    }

    #[test]
    fn panicking_tasks_drop_their_partial_histograms() {
        let items: Vec<u64> = (0..12).collect();
        let run = |workers| {
            with_threads(workers, || {
                qd_obs::with_recorder(|| {
                    par_try_map(&items, |&x| {
                        qd_obs::observe("t.work", x + 1);
                        if x % 5 == 2 {
                            panic!("injected {x}");
                        }
                        qd_obs::observe("t.done", 1);
                        x
                    })
                })
            })
        };
        let (out1, trace1) = run(1);
        let (out8, trace8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(trace1, trace8);
        // Panicked tasks still absorb the observations they made before
        // dying; only survivors reach `t.done`.
        assert_eq!(trace1.hists["t.work"].count(), 12);
        assert_eq!(trace1.hists["t.done"].count(), 10);
    }

    #[test]
    fn panicking_tasks_keep_their_partial_traces() {
        let items: Vec<u64> = (0..12).collect();
        let run = |workers| {
            with_threads(workers, || {
                qd_obs::with_recorder(|| {
                    par_try_map(&items, |&x| {
                        qd_obs::count("before", 1);
                        if x % 5 == 2 {
                            panic!("injected {x}");
                        }
                        qd_obs::count("after", 1);
                        x
                    })
                })
            })
        };
        let (out1, trace1) = run(1);
        let (out8, trace8) = run(8);
        assert_eq!(out1, out8);
        assert_eq!(trace1, trace8);
        // Every task counted `before`, only survivors counted `after`.
        assert_eq!(trace1.counters["before"], 12);
        assert_eq!(trace1.counters["after"], 10);
    }

    #[test]
    fn no_recorder_means_no_traces() {
        let items: Vec<u64> = (0..8).collect();
        let out = with_threads(4, || {
            par_map(&items, |&x| {
                assert!(!qd_obs::enabled(), "recorder must not leak into workers");
                x
            })
        });
        assert_eq!(out, items);
    }

    #[test]
    fn fault_plan_reaches_parallel_workers() {
        let plan = qd_fault::FaultPlan::new(21).site("t.runtime", qd_fault::Mode::Always);
        let items: Vec<u64> = (0..32).collect();
        let fired = qd_fault::with_plan(&plan, || {
            with_threads(8, || {
                par_map(&items, |&k| qd_fault::fire_keyed("t.runtime", k).is_some())
            })
        });
        assert!(
            fired.iter().all(|&b| b),
            "every worker must observe the plan"
        );
        let silent = with_threads(8, || {
            par_map(&items, |&k| qd_fault::fire_keyed("t.runtime", k))
        });
        assert!(
            silent.iter().all(Option::is_none),
            "plan does not leak past with_plan"
        );
    }
}
