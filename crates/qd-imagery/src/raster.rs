//! The RGB raster type.

/// An RGB pixel with `f32` channels in `[0, 1]`.
pub type Rgb = [f32; 3];

/// A dense row-major RGB image.
///
/// Channels are `f32` in `[0, 1]`; the feature extractors consume floating
/// point values directly, so there is no reason to round-trip through `u8`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl Image {
    /// Creates a `width × height` image filled with `fill`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, fill: Rgb) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            pixels: vec![fill; width * height],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> Rgb) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics in debug builds if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        debug_assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`, clamping each channel to `[0, 1]`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, p: Rgb) {
        debug_assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = [
            p[0].clamp(0.0, 1.0),
            p[1].clamp(0.0, 1.0),
            p[2].clamp(0.0, 1.0),
        ];
    }

    /// Raw pixel slice, row-major.
    #[inline]
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Applies `f` to every pixel, producing a new image.
    pub fn map(&self, f: impl Fn(Rgb) -> Rgb) -> Image {
        Image {
            width: self.width,
            height: self.height,
            pixels: self
                .pixels
                .iter()
                .map(|&p| {
                    let q = f(p);
                    [
                        q[0].clamp(0.0, 1.0),
                        q[1].clamp(0.0, 1.0),
                        q[2].clamp(0.0, 1.0),
                    ]
                })
                .collect(),
        }
    }

    /// Per-pixel luminance (Rec. 601 weights), row-major.
    pub fn luminance(&self) -> Vec<f32> {
        self.pixels
            .iter()
            .map(|p| 0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_image_has_uniform_pixels() {
        let img = Image::filled(4, 3, [0.5, 0.25, 1.0]);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.pixels().iter().all(|&p| p == [0.5, 0.25, 1.0]));
    }

    #[test]
    fn from_fn_addresses_row_major() {
        let img = Image::from_fn(3, 2, |x, y| [x as f32 / 4.0, y as f32 / 4.0, 0.0]);
        assert_eq!(img.get(2, 1), [0.5, 0.25, 0.0]);
        assert_eq!(img.get(0, 0), [0.0, 0.0, 0.0]);
        assert_eq!(img.get(1, 0), [0.25, 0.0, 0.0]);
    }

    #[test]
    fn set_clamps_channels() {
        let mut img = Image::filled(2, 2, [0.0; 3]);
        img.set(0, 0, [2.0, -1.0, 0.5]);
        assert_eq!(img.get(0, 0), [1.0, 0.0, 0.5]);
    }

    #[test]
    fn map_applies_per_pixel_and_clamps() {
        let img = Image::filled(2, 2, [0.4, 0.4, 0.4]);
        let doubled = img.map(|p| [p[0] * 2.0, p[1] * 3.0, p[2] - 1.0]);
        assert_eq!(doubled.get(1, 1), [0.8, 1.0, 0.0]);
    }

    #[test]
    fn luminance_of_white_is_one() {
        let img = Image::filled(2, 1, [1.0; 3]);
        let lum = img.luminance();
        assert_eq!(lum.len(), 2);
        assert!((lum[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn luminance_weights_green_most() {
        let r = Image::filled(1, 1, [1.0, 0.0, 0.0]).luminance()[0];
        let g = Image::filled(1, 1, [0.0, 1.0, 0.0]).luminance()[0];
        let b = Image::filled(1, 1, [0.0, 0.0, 1.0]).luminance()[0];
        assert!(g > r && r > b);
        assert!((r + g + b - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        Image::filled(0, 5, [0.0; 3]);
    }
}
