//! RGB ↔ HSV conversion.
//!
//! The color-moment features of Stricker & Orengo (the first 9 of the paper's
//! 37 dimensions) are computed in HSV space, which decorrelates chromatic
//! content from illumination better than raw RGB.

/// Converts an RGB triple (channels in `[0, 1]`) to HSV with
/// `h ∈ [0, 1)` (hue as a fraction of the full circle), `s, v ∈ [0, 1]`.
pub fn rgb_to_hsv(rgb: [f32; 3]) -> [f32; 3] {
    let [r, g, b] = rgb;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;

    let v = max;
    let s = if max <= 0.0 { 0.0 } else { delta / max };
    let h = if delta <= 1e-9 {
        0.0
    } else if max == r {
        ((g - b) / delta).rem_euclid(6.0)
    } else if max == g {
        (b - r) / delta + 2.0
    } else {
        (r - g) / delta + 4.0
    } / 6.0;

    [h.rem_euclid(1.0), s, v]
}

/// Converts an HSV triple (`h ∈ [0, 1)`, `s, v ∈ [0, 1]`) back to RGB.
pub fn hsv_to_rgb(hsv: [f32; 3]) -> [f32; 3] {
    let [h, s, v] = hsv;
    let h6 = h.rem_euclid(1.0) * 6.0;
    let c = v * s;
    let x = c * (1.0 - (h6.rem_euclid(2.0) - 1.0).abs());
    let m = v - c;
    let (r, g, b) = match h6 as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    [r + m, g + m, b + m]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: [f32; 3], b: [f32; 3]) -> bool {
        a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-5)
    }

    #[test]
    fn primaries_have_expected_hue() {
        assert!(close(rgb_to_hsv([1.0, 0.0, 0.0]), [0.0, 1.0, 1.0])); // red
        assert!(close(rgb_to_hsv([0.0, 1.0, 0.0]), [1.0 / 3.0, 1.0, 1.0])); // green
        assert!(close(rgb_to_hsv([0.0, 0.0, 1.0]), [2.0 / 3.0, 1.0, 1.0])); // blue
    }

    #[test]
    fn grays_have_zero_saturation() {
        for g in [0.0, 0.25, 0.5, 1.0] {
            let hsv = rgb_to_hsv([g, g, g]);
            assert_eq!(hsv[1], 0.0);
            assert!((hsv[2] - g).abs() < 1e-6);
        }
    }

    #[test]
    fn hsv_roundtrips_rgb() {
        for r in 0..5 {
            for g in 0..5 {
                for b in 0..5 {
                    let rgb = [r as f32 / 4.0, g as f32 / 4.0, b as f32 / 4.0];
                    let back = hsv_to_rgb(rgb_to_hsv(rgb));
                    assert!(close(rgb, back), "{rgb:?} -> {back:?}");
                }
            }
        }
    }

    #[test]
    fn hue_wraps_around() {
        let a = hsv_to_rgb([0.0, 1.0, 1.0]);
        let b = hsv_to_rgb([1.0, 1.0, 1.0]);
        assert!(close(a, b));
    }

    #[test]
    fn hsv_output_is_in_range() {
        for i in 0..50 {
            let rgb = [
                (i as f32 * 0.137).fract(),
                (i as f32 * 0.311).fract(),
                (i as f32 * 0.733).fract(),
            ];
            let [h, s, v] = rgb_to_hsv(rgb);
            assert!((0.0..1.0).contains(&h), "h={h}");
            assert!((0.0..=1.0).contains(&s), "s={s}");
            assert!((0.0..=1.0).contains(&v), "v={v}");
        }
    }
}
