//! The four channel "viewpoints" of the Multiple Viewpoints baseline.
//!
//! French & Jin's MV technique (§2, §5.2 of the paper) issues one k-NN query
//! per viewpoint — the paper evaluates four *color channels*: the normal
//! image, its color negative, a black-and-white rendering, and the
//! black-and-white negative — and combines the returned images into the final
//! result set. Each viewpoint is a per-pixel channel transform applied before
//! feature extraction.

use crate::raster::Image;

/// One of the four MV color-channel viewpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Viewpoint {
    /// The untransformed image.
    Normal,
    /// Per-channel color negative: `c → 1 - c`.
    Negative,
    /// Black-and-white (luminance replicated to all channels).
    Grayscale,
    /// Negative of the black-and-white rendering.
    GrayNegative,
}

impl Viewpoint {
    /// All four viewpoints, in the order the MV result channels are merged.
    pub const ALL: [Viewpoint; 4] = [
        Viewpoint::Normal,
        Viewpoint::Negative,
        Viewpoint::Grayscale,
        Viewpoint::GrayNegative,
    ];

    /// Applies this viewpoint's channel transform.
    pub fn apply(self, img: &Image) -> Image {
        match self {
            Viewpoint::Normal => img.clone(),
            Viewpoint::Negative => img.map(|p| [1.0 - p[0], 1.0 - p[1], 1.0 - p[2]]),
            Viewpoint::Grayscale => img.map(|p| {
                let l = 0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2];
                [l, l, l]
            }),
            Viewpoint::GrayNegative => img.map(|p| {
                let l = 1.0 - (0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2]);
                [l, l, l]
            }),
        }
    }

    /// Stable display name (used by benches and examples).
    pub fn name(self) -> &'static str {
        match self {
            Viewpoint::Normal => "normal",
            Viewpoint::Negative => "color-negative",
            Viewpoint::Grayscale => "black-white",
            Viewpoint::GrayNegative => "black-white-negative",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_is_identity() {
        let img = Image::from_fn(3, 3, |x, y| [x as f32 / 3.0, y as f32 / 3.0, 0.5]);
        assert_eq!(Viewpoint::Normal.apply(&img), img);
    }

    #[test]
    fn negative_is_involution() {
        let img = Image::from_fn(4, 2, |x, _| [x as f32 / 4.0, 0.25, 0.75]);
        let back = Viewpoint::Negative.apply(&Viewpoint::Negative.apply(&img));
        for (a, b) in back.pixels().iter().zip(img.pixels()) {
            for c in 0..3 {
                assert!((a[c] - b[c]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn grayscale_has_equal_channels() {
        let img = Image::filled(2, 2, [0.9, 0.1, 0.4]);
        let gray = Viewpoint::Grayscale.apply(&img);
        let p = gray.get(0, 0);
        assert_eq!(p[0], p[1]);
        assert_eq!(p[1], p[2]);
    }

    #[test]
    fn gray_negative_is_negative_of_grayscale() {
        let img = Image::filled(1, 1, [0.2, 0.6, 0.8]);
        let g = Viewpoint::Grayscale.apply(&img).get(0, 0)[0];
        let gn = Viewpoint::GrayNegative.apply(&img).get(0, 0)[0];
        assert!((g + gn - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_lists_four_distinct_viewpoints() {
        let mut names: Vec<&str> = Viewpoint::ALL.iter().map(|v| v.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
