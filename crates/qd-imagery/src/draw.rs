//! Rasterization primitives used by the synthetic scene renderer.
//!
//! All primitives clip against the image bounds, so templates can place
//! objects partially off-canvas (the renderer jitters positions).

use crate::raster::{Image, Rgb};
use rand::{Rng, RngExt};

/// Fills the whole image with `color`.
pub fn fill(img: &mut Image, color: Rgb) {
    for y in 0..img.height() {
        for x in 0..img.width() {
            img.set(x, y, color);
        }
    }
}

/// Fills a vertical gradient from `top` (row 0) to `bottom` (last row).
pub fn vertical_gradient(img: &mut Image, top: Rgb, bottom: Rgb) {
    let h = img.height().max(2) as f32;
    for y in 0..img.height() {
        let t = y as f32 / (h - 1.0);
        let c = [
            top[0] + t * (bottom[0] - top[0]),
            top[1] + t * (bottom[1] - top[1]),
            top[2] + t * (bottom[2] - top[2]),
        ];
        for x in 0..img.width() {
            img.set(x, y, c);
        }
    }
}

/// Axis-aligned filled rectangle centered at `(cx, cy)` with half-extents
/// `(hw, hh)`, rotated by `angle` radians.
pub fn fill_rect(img: &mut Image, cx: f32, cy: f32, hw: f32, hh: f32, angle: f32, color: Rgb) {
    let (sin, cos) = angle.sin_cos();
    let reach = hw.abs().max(hh.abs()) * 1.5 + 1.0;
    scan_region(
        img,
        cx,
        cy,
        reach,
        |x, y| {
            // Rotate the pixel into the rectangle's local frame.
            let dx = x - cx;
            let dy = y - cy;
            let lx = dx * cos + dy * sin;
            let ly = -dx * sin + dy * cos;
            lx.abs() <= hw && ly.abs() <= hh
        },
        color,
    );
}

/// Filled ellipse centered at `(cx, cy)` with radii `(rx, ry)`, rotated by
/// `angle` radians.
pub fn fill_ellipse(img: &mut Image, cx: f32, cy: f32, rx: f32, ry: f32, angle: f32, color: Rgb) {
    let (sin, cos) = angle.sin_cos();
    let reach = rx.abs().max(ry.abs()) + 1.0;
    scan_region(
        img,
        cx,
        cy,
        reach,
        |x, y| {
            let dx = x - cx;
            let dy = y - cy;
            let lx = dx * cos + dy * sin;
            let ly = -dx * sin + dy * cos;
            (lx / rx).powi(2) + (ly / ry).powi(2) <= 1.0
        },
        color,
    );
}

/// Filled isoceles triangle: apex up, centered at `(cx, cy)`, half-width `hw`
/// at the base, half-height `hh`, rotated by `angle` radians.
pub fn fill_triangle(img: &mut Image, cx: f32, cy: f32, hw: f32, hh: f32, angle: f32, color: Rgb) {
    let (sin, cos) = angle.sin_cos();
    let reach = hw.abs().max(hh.abs()) * 1.5 + 1.0;
    scan_region(
        img,
        cx,
        cy,
        reach,
        |x, y| {
            let dx = x - cx;
            let dy = y - cy;
            let lx = dx * cos + dy * sin;
            let ly = -dx * sin + dy * cos;
            // In local frame: apex at (0, -hh), base from (-hw, hh) to (hw, hh).
            if ly < -hh || ly > hh {
                return false;
            }
            let t = (ly + hh) / (2.0 * hh); // 0 at apex, 1 at base
            lx.abs() <= hw * t
        },
        color,
    );
}

/// Thick line segment ("bar") from `(x0, y0)` to `(x1, y1)` with the given
/// half-thickness.
pub fn fill_bar(img: &mut Image, x0: f32, y0: f32, x1: f32, y1: f32, half_thick: f32, color: Rgb) {
    let cx = (x0 + x1) / 2.0;
    let cy = (y0 + y1) / 2.0;
    let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
    let angle = (y1 - y0).atan2(x1 - x0);
    fill_rect(
        img,
        cx,
        cy,
        len / 2.0 + half_thick,
        half_thick,
        angle,
        color,
    );
}

/// Adds uniform speckle noise: each pixel is perturbed by up to `±amplitude`
/// per channel.
pub fn speckle<R: Rng>(img: &mut Image, amplitude: f32, rng: &mut R) {
    for y in 0..img.height() {
        for x in 0..img.width() {
            let p = img.get(x, y);
            let jitter = |c: f32, r: &mut R| c + (r.random::<f32>() * 2.0 - 1.0) * amplitude;
            let q = [jitter(p[0], rng), jitter(p[1], rng), jitter(p[2], rng)];
            img.set(x, y, q);
        }
    }
}

/// Horizontal stripes of alternating colors with the given period in pixels.
pub fn stripes(img: &mut Image, a: Rgb, b: Rgb, period: usize) {
    let period = period.max(2);
    for y in 0..img.height() {
        let c = if (y / (period / 2)).is_multiple_of(2) {
            a
        } else {
            b
        };
        for x in 0..img.width() {
            img.set(x, y, c);
        }
    }
}

/// Checkerboard of alternating colors with the given cell size in pixels.
pub fn checker(img: &mut Image, a: Rgb, b: Rgb, cell: usize) {
    let cell = cell.max(1);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let c = if (x / cell + y / cell).is_multiple_of(2) {
                a
            } else {
                b
            };
            img.set(x, y, c);
        }
    }
}

/// Scatters `count` small random blobs from `palette` over the image —
/// the "cluttered background" used by some subconcept templates.
pub fn clutter<R: Rng>(
    img: &mut Image,
    palette: &[Rgb],
    count: usize,
    max_radius: f32,
    rng: &mut R,
) {
    if palette.is_empty() {
        return;
    }
    let (w, h) = (img.width() as f32, img.height() as f32);
    for _ in 0..count {
        let color = palette[rng.random_range(0..palette.len())];
        let cx = rng.random::<f32>() * w;
        let cy = rng.random::<f32>() * h;
        let r = 1.0 + rng.random::<f32>() * max_radius;
        fill_ellipse(img, cx, cy, r, r, 0.0, color);
    }
}

/// Visits the clipped bounding box around `(cx, cy)` with radius `reach` and
/// writes `color` where `inside` holds.
fn scan_region(
    img: &mut Image,
    cx: f32,
    cy: f32,
    reach: f32,
    inside: impl Fn(f32, f32) -> bool,
    color: Rgb,
) {
    let x0 = ((cx - reach).floor().max(0.0)) as usize;
    let y0 = ((cy - reach).floor().max(0.0)) as usize;
    let x1 = ((cx + reach).ceil() as usize).min(img.width().saturating_sub(1));
    let y1 = ((cy + reach).ceil() as usize).min(img.height().saturating_sub(1));
    if x0 > x1 || y0 > y1 {
        return;
    }
    for y in y0..=y1 {
        for x in x0..=x1 {
            if inside(x as f32 + 0.5, y as f32 + 0.5) {
                img.set(x, y, color);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const RED: Rgb = [1.0, 0.0, 0.0];
    const BLACK: Rgb = [0.0, 0.0, 0.0];
    const WHITE: Rgb = [1.0, 1.0, 1.0];

    fn count_color(img: &Image, c: Rgb) -> usize {
        img.pixels().iter().filter(|&&p| p == c).count()
    }

    #[test]
    fn fill_covers_everything() {
        let mut img = Image::filled(5, 5, BLACK);
        fill(&mut img, RED);
        assert_eq!(count_color(&img, RED), 25);
    }

    #[test]
    fn gradient_endpoints_match() {
        let mut img = Image::filled(3, 10, BLACK);
        vertical_gradient(&mut img, WHITE, BLACK);
        assert_eq!(img.get(0, 0), WHITE);
        assert_eq!(img.get(0, 9), BLACK);
        // Monotone decreasing in y.
        for y in 1..10 {
            assert!(img.get(1, y)[0] <= img.get(1, y - 1)[0]);
        }
    }

    #[test]
    fn rect_center_is_colored_and_corners_are_not() {
        let mut img = Image::filled(20, 20, BLACK);
        fill_rect(&mut img, 10.0, 10.0, 4.0, 2.0, 0.0, RED);
        assert_eq!(img.get(10, 10), RED);
        assert_eq!(img.get(0, 0), BLACK);
        assert_eq!(img.get(19, 19), BLACK);
        // Wider than tall.
        assert_eq!(img.get(13, 10), RED);
        assert_eq!(img.get(10, 13), BLACK);
    }

    #[test]
    fn rotated_rect_swaps_extents() {
        let mut img = Image::filled(20, 20, BLACK);
        fill_rect(
            &mut img,
            10.0,
            10.0,
            6.0,
            1.5,
            std::f32::consts::FRAC_PI_2,
            RED,
        );
        // After a 90° rotation the long axis is vertical.
        assert_eq!(img.get(10, 14), RED);
        assert_eq!(img.get(14, 10), BLACK);
    }

    #[test]
    fn ellipse_is_inside_bounding_rect() {
        let mut img = Image::filled(30, 30, BLACK);
        fill_ellipse(&mut img, 15.0, 15.0, 8.0, 4.0, 0.0, RED);
        let painted = count_color(&img, RED);
        assert!(painted > 0);
        // Area ≈ π·rx·ry ≈ 100; must be below the bounding box area 16·8=128.
        assert!(painted < 128, "painted = {painted}");
        assert_eq!(img.get(15, 15), RED);
        assert_eq!(img.get(22, 18), BLACK); // outside the ellipse
    }

    #[test]
    fn triangle_is_narrow_at_apex() {
        let mut img = Image::filled(20, 20, BLACK);
        fill_triangle(&mut img, 10.0, 10.0, 6.0, 6.0, 0.0, RED);
        // Near the base (bottom) the triangle is wide; near the apex narrow.
        let base_row: usize = (0..20).filter(|&x| img.get(x, 15) == RED).count();
        let apex_row: usize = (0..20).filter(|&x| img.get(x, 5) == RED).count();
        assert!(base_row > apex_row);
    }

    #[test]
    fn bar_connects_endpoints() {
        let mut img = Image::filled(20, 20, BLACK);
        fill_bar(&mut img, 2.0, 2.0, 17.0, 17.0, 1.0, RED);
        assert_eq!(img.get(2, 2), RED);
        assert_eq!(img.get(17, 17), RED);
        assert_eq!(img.get(10, 10), RED);
        assert_eq!(img.get(17, 2), BLACK);
    }

    #[test]
    fn primitives_clip_offscreen_without_panicking() {
        let mut img = Image::filled(10, 10, BLACK);
        fill_rect(&mut img, -5.0, -5.0, 3.0, 3.0, 0.3, RED);
        fill_ellipse(&mut img, 20.0, 5.0, 15.0, 2.0, 0.0, RED);
        fill_triangle(&mut img, 5.0, 30.0, 4.0, 4.0, 0.0, RED);
        // The second ellipse reaches into frame.
        assert!(count_color(&img, RED) > 0);
    }

    #[test]
    fn speckle_stays_in_range_and_changes_pixels() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut img = Image::filled(8, 8, [0.5, 0.5, 0.5]);
        speckle(&mut img, 0.2, &mut rng);
        assert!(img.pixels().iter().any(|&p| p != [0.5, 0.5, 0.5]));
        for p in img.pixels() {
            for channel in p {
                assert!((0.3 - 1e-6..=0.7 + 1e-6).contains(channel));
            }
        }
    }

    #[test]
    fn stripes_alternate() {
        let mut img = Image::filled(4, 8, BLACK);
        stripes(&mut img, WHITE, RED, 4);
        assert_eq!(img.get(0, 0), WHITE);
        assert_eq!(img.get(0, 2), RED);
        assert_eq!(img.get(0, 4), WHITE);
    }

    #[test]
    fn checker_alternates_in_both_axes() {
        let mut img = Image::filled(8, 8, BLACK);
        checker(&mut img, WHITE, RED, 2);
        assert_eq!(img.get(0, 0), WHITE);
        assert_eq!(img.get(2, 0), RED);
        assert_eq!(img.get(0, 2), RED);
        assert_eq!(img.get(2, 2), WHITE);
    }

    #[test]
    fn clutter_paints_something_and_empty_palette_is_noop() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut img = Image::filled(16, 16, BLACK);
        clutter(&mut img, &[RED, WHITE], 10, 3.0, &mut rng);
        assert!(img.pixels().iter().any(|&p| p != BLACK));

        let mut img2 = Image::filled(16, 16, BLACK);
        clutter(&mut img2, &[], 10, 3.0, &mut rng);
        assert_eq!(count_color(&img2, BLACK), 256);
    }
}
