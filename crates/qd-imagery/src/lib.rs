#![warn(missing_docs)]

//! Image substrate for the Query Decomposition reproduction.
//!
//! The original system was evaluated on 15,000 Corel photographs, which are
//! proprietary. This crate provides the substitution documented in DESIGN.md:
//! a deterministic synthetic scene renderer whose (category, subconcept)
//! templates produce rasters that — after the genuine 37-dimensional feature
//! extraction of `qd-features` — exhibit exactly the feature-space geometry
//! the paper's argument rests on: one semantic label scattered over several
//! visually distinct clusters.
//!
//! Modules:
//! * [`raster`] — the RGB image type (f32 channels in `[0, 1]`),
//! * [`color`] — RGB↔HSV conversion used by the color-moment features,
//! * [`transform`] — the four "viewpoint" channel transforms of the Multiple
//!   Viewpoints baseline (normal, color-negative, gray, gray-negative),
//! * [`draw`] — rasterization primitives (rects, ellipses, triangles, bars,
//!   gradients, speckle, stripes),
//! * [`synth`] — parametric scene templates and the renderer.

pub mod color;
pub mod draw;
pub mod io;
pub mod raster;
pub mod synth;
pub mod transform;

pub use raster::Image;
pub use synth::{Background, ObjectSpec, SceneTemplate, Shape};
pub use transform::Viewpoint;
