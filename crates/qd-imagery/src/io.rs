//! Image inspection outputs: binary PPM files and ANSI terminal previews.
//!
//! The paper's prototype displays result images in a GUI (Figure 3). This
//! reproduction is headless, so images are inspectable two ways: written to
//! disk as PPM (viewable by any image tool) or rendered inline in a
//! truecolor terminal as half-block cells.

use crate::raster::Image;
use std::io::{self, Write};
use std::path::Path;

/// Writes the image as a binary PPM (P6) file.
pub fn write_ppm(img: &Image, path: &Path) -> io::Result<()> {
    let mut out = Vec::with_capacity(img.width() * img.height() * 3 + 64);
    write!(out, "P6\n{} {}\n255\n", img.width(), img.height())?;
    for p in img.pixels() {
        for c in p {
            out.push((c.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
    }
    std::fs::write(path, out)
}

/// Reads a binary PPM (P6) file produced by [`write_ppm`].
///
/// Supports the subset this crate writes: one whitespace-separated header,
/// maxval 255.
pub fn read_ppm(path: &Path) -> io::Result<Image> {
    let data = std::fs::read(path)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut fields = Vec::new();
    let mut pos = 0usize;
    // Parse exactly 4 header fields (magic, width, height, maxval), skipping
    // whitespace and comments.
    while fields.len() < 4 {
        while pos < data.len() && data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if pos < data.len() && data[pos] == b'#' {
            while pos < data.len() && data[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        while pos < data.len() && !data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(bad("truncated PPM header"));
        }
        fields.push(std::str::from_utf8(&data[start..pos]).map_err(|_| bad("non-ASCII header"))?);
    }
    if fields[0] != "P6" {
        return Err(bad("not a binary PPM (P6)"));
    }
    let width: usize = fields[1].parse().map_err(|_| bad("bad width"))?;
    let height: usize = fields[2].parse().map_err(|_| bad("bad height"))?;
    if fields[3] != "255" {
        return Err(bad("only maxval 255 is supported"));
    }
    pos += 1; // single whitespace after maxval
    let need = width * height * 3;
    if data.len() < pos + need {
        return Err(bad("truncated pixel data"));
    }
    let mut pixels = Vec::with_capacity(width * height);
    for chunk in data[pos..pos + need].chunks_exact(3) {
        pixels.push([
            chunk[0] as f32 / 255.0,
            chunk[1] as f32 / 255.0,
            chunk[2] as f32 / 255.0,
        ]);
    }
    Ok(Image::from_fn(width, height, |x, y| pixels[y * width + x]))
}

/// Encodes the image as an uncompressed 24-bit BMP — the format browsers
/// accept in `data:` URIs without any compression dependency, which is how
/// the benchmark harness embeds thumbnails into its HTML reports.
pub fn bmp_bytes(img: &Image) -> Vec<u8> {
    let width = img.width();
    let height = img.height();
    let row_bytes = width * 3;
    let padding = (4 - row_bytes % 4) % 4;
    let pixel_bytes = (row_bytes + padding) * height;
    let file_size = 54 + pixel_bytes;

    let mut out = Vec::with_capacity(file_size);
    // BITMAPFILEHEADER
    out.extend_from_slice(b"BM");
    out.extend_from_slice(&(file_size as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&54u32.to_le_bytes()); // pixel data offset
                                                 // BITMAPINFOHEADER
    out.extend_from_slice(&40u32.to_le_bytes());
    out.extend_from_slice(&(width as i32).to_le_bytes());
    out.extend_from_slice(&(height as i32).to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // planes
    out.extend_from_slice(&24u16.to_le_bytes()); // bits per pixel
    out.extend_from_slice(&0u32.to_le_bytes()); // no compression
    out.extend_from_slice(&(pixel_bytes as u32).to_le_bytes());
    out.extend_from_slice(&2835u32.to_le_bytes()); // 72 DPI
    out.extend_from_slice(&2835u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // palette colors
    out.extend_from_slice(&0u32.to_le_bytes()); // important colors
                                                // Pixel rows, bottom-up, BGR order.
    for y in (0..height).rev() {
        for x in 0..width {
            let p = img.get(x, y);
            out.push((p[2].clamp(0.0, 1.0) * 255.0).round() as u8);
            out.push((p[1].clamp(0.0, 1.0) * 255.0).round() as u8);
            out.push((p[0].clamp(0.0, 1.0) * 255.0).round() as u8);
        }
        out.extend(std::iter::repeat_n(0u8, padding));
    }
    debug_assert_eq!(out.len(), file_size);
    out
}

/// Base64-encodes bytes (standard alphabet, padded) — enough for `data:`
/// URIs without an external crate.
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// The image as an HTML `data:` URI (`<img src="…">`-ready).
pub fn data_uri(img: &Image) -> String {
    format!("data:image/bmp;base64,{}", base64(&bmp_bytes(img)))
}

/// Renders the image as ANSI truecolor half-blocks (two pixel rows per text
/// line), downsampled to at most `max_cols` columns. The prototype's
/// "thumbnail" for terminal sessions.
pub fn ansi_preview(img: &Image, max_cols: usize) -> String {
    let max_cols = max_cols.max(1);
    let step = img.width().div_ceil(max_cols).max(1);
    let cols = img.width() / step;
    let rows = img.height() / step;
    let sample = |cx: usize, cy: usize| -> [u8; 3] {
        // Box-average the step×step cell.
        let (mut r, mut g, mut b) = (0.0f32, 0.0f32, 0.0f32);
        let mut n = 0.0f32;
        for y in cy * step..((cy + 1) * step).min(img.height()) {
            for x in cx * step..((cx + 1) * step).min(img.width()) {
                let p = img.get(x, y);
                r += p[0];
                g += p[1];
                b += p[2];
                n += 1.0;
            }
        }
        [
            (r / n * 255.0) as u8,
            (g / n * 255.0) as u8,
            (b / n * 255.0) as u8,
        ]
    };
    let mut out = String::new();
    let mut cy = 0;
    while cy + 1 < rows || (rows == 1 && cy == 0) {
        for cx in 0..cols {
            let top = sample(cx, cy);
            let bottom = if cy + 1 < rows {
                sample(cx, cy + 1)
            } else {
                top
            };
            out.push_str(&format!(
                "\x1b[38;2;{};{};{}m\x1b[48;2;{};{};{}m▀",
                top[0], top[1], top[2], bottom[0], bottom[1], bottom[2]
            ));
        }
        out.push_str("\x1b[0m\n");
        cy += 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;

    fn sample() -> Image {
        let mut img = Image::filled(12, 10, [0.2, 0.4, 0.6]);
        draw::fill_rect(&mut img, 6.0, 5.0, 3.0, 2.0, 0.0, [0.9, 0.1, 0.1]);
        img
    }

    #[test]
    fn ppm_roundtrips() {
        let dir = std::env::temp_dir().join("qd_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ppm");
        let img = sample();
        write_ppm(&img, &path).unwrap();
        let back = read_ppm(&path).unwrap();
        assert_eq!(back.width(), img.width());
        assert_eq!(back.height(), img.height());
        for (a, b) in back.pixels().iter().zip(img.pixels()) {
            for c in 0..3 {
                assert!((a[c] - b[c]).abs() < 1.0 / 254.0, "{a:?} vs {b:?}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ppm_header_is_well_formed() {
        let dir = std::env::temp_dir().join("qd_ppm_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hdr.ppm");
        write_ppm(&sample(), &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n12 10\n255\n"));
        assert_eq!(data.len(), b"P6\n12 10\n255\n".len() + 12 * 10 * 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let dir = std::env::temp_dir().join("qd_ppm_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ppm");
        std::fs::write(&path, b"P3\n1 1\n255\n0 0 0\n").unwrap();
        assert!(read_ppm(&path).is_err());
        std::fs::write(&path, b"P6\n4 4\n255\nxx").unwrap();
        assert!(read_ppm(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bmp_has_valid_header_and_size() {
        let img = sample(); // 12 × 10
        let bmp = bmp_bytes(&img);
        assert_eq!(&bmp[..2], b"BM");
        let file_size = u32::from_le_bytes(bmp[2..6].try_into().unwrap()) as usize;
        assert_eq!(file_size, bmp.len());
        let width = i32::from_le_bytes(bmp[18..22].try_into().unwrap());
        let height = i32::from_le_bytes(bmp[22..26].try_into().unwrap());
        assert_eq!(width, 12);
        assert_eq!(height, 10);
        // 12 px × 3 B = 36 B per row: already 4-aligned, no padding.
        assert_eq!(bmp.len(), 54 + 36 * 10);
    }

    #[test]
    fn bmp_pads_rows_to_four_bytes() {
        let img = Image::filled(5, 3, [1.0, 0.0, 0.0]);
        let bmp = bmp_bytes(&img);
        // 5 px × 3 B = 15 B → padded to 16.
        assert_eq!(bmp.len(), 54 + 16 * 3);
        // Bottom-up BGR: first pixel byte after header is blue channel of
        // the bottom-left pixel.
        assert_eq!(&bmp[54..57], &[0, 0, 255]);
    }

    #[test]
    fn base64_matches_known_vectors() {
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn data_uri_is_well_formed() {
        let uri = data_uri(&sample());
        assert!(uri.starts_with("data:image/bmp;base64,"));
        assert!(!uri.contains('\n'));
        // Base64 payload length is a multiple of 4.
        let payload = uri.rsplit(',').next().unwrap();
        assert_eq!(payload.len() % 4, 0);
    }

    #[test]
    fn ansi_preview_has_expected_shape() {
        let img = sample();
        let preview = ansi_preview(&img, 12);
        // 10 rows → 5 text lines; each ends with a reset.
        assert_eq!(preview.lines().count(), 5);
        for line in preview.lines() {
            assert!(line.ends_with("\x1b[0m"));
            assert_eq!(line.matches('▀').count(), 12);
        }
    }

    #[test]
    fn ansi_preview_downsamples() {
        let img = Image::filled(64, 64, [0.5; 3]);
        let preview = ansi_preview(&img, 16);
        assert!(preview.lines().next().unwrap().matches('▀').count() <= 16);
    }
}
