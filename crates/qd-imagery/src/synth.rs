//! Parametric scene templates — the synthetic stand-in for Corel photographs.
//!
//! A [`SceneTemplate`] describes one *subconcept* (e.g. "white sedan,
//! side view"): a background, a set of jittered geometric objects, and a
//! noise level. Rendering the same template with different RNG draws yields
//! visually similar images that land in one tight feature-space cluster;
//! rendering *different* templates of the same semantic category (the four
//! sedan poses) yields clusters that are far apart — the scattering the
//! Query Decomposition paper is built around.
//!
//! Geometry is specified in fractions of the image size so templates are
//! resolution independent.

use crate::draw;
use crate::raster::{Image, Rgb};
use rand::{Rng, RngExt};

/// Scene background styles.
#[derive(Debug, Clone, PartialEq)]
pub enum Background {
    /// A single flat color.
    Solid(Rgb),
    /// Vertical gradient from top color to bottom color.
    Gradient(Rgb, Rgb),
    /// Horizontal stripes with the given period (fraction of image height).
    Stripes(Rgb, Rgb, f32),
    /// Checkerboard with the given cell size (fraction of image width).
    Checker(Rgb, Rgb, f32),
    /// Flat base color overlaid with random blobs from a palette; `density`
    /// is blobs per 1,000 pixels.
    Clutter {
        /// Flat base color under the blobs.
        base: Rgb,
        /// Colors the blobs are sampled from.
        palette: Vec<Rgb>,
        /// Blobs per 1,000 pixels.
        density: f32,
        /// Maximum blob radius as a fraction of `min(width, height)`.
        max_radius: f32,
    },
}

/// Object outline shapes. All extents are fractions of `min(width, height)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Ellipse with the given radii.
    Ellipse {
        /// Horizontal radius.
        rx: f32,
        /// Vertical radius.
        ry: f32,
    },
    /// Rectangle with the given half-extents.
    Rect {
        /// Half-width.
        hw: f32,
        /// Half-height.
        hh: f32,
    },
    /// Isoceles triangle (apex up before rotation).
    Triangle {
        /// Half-width at the base.
        hw: f32,
        /// Half-height.
        hh: f32,
    },
    /// Thick line segment of the given length and half-thickness, oriented
    /// by the object's angle.
    Bar {
        /// Segment length.
        len: f32,
        /// Half of the stroke thickness.
        half_thick: f32,
    },
}

/// One object in a scene: a shape plus placement and per-render jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// Outline shape.
    pub shape: Shape,
    /// Fill color before per-render jitter.
    pub color: Rgb,
    /// Nominal center as a fraction of (width, height).
    pub center: (f32, f32),
    /// Nominal rotation in radians.
    pub angle: f32,
    /// Max positional jitter as a fraction of the image size.
    pub pos_jitter: f32,
    /// Max multiplicative size jitter (e.g. `0.1` → ±10 %).
    pub size_jitter: f32,
    /// Max rotation jitter in radians.
    pub angle_jitter: f32,
    /// Max per-channel color jitter.
    pub color_jitter: f32,
}

impl ObjectSpec {
    /// A spec with the given shape/color/placement and mild default jitter.
    pub fn new(shape: Shape, color: Rgb, center: (f32, f32), angle: f32) -> Self {
        Self {
            shape,
            color,
            center,
            angle,
            pos_jitter: 0.04,
            size_jitter: 0.12,
            angle_jitter: 0.08,
            color_jitter: 0.05,
        }
    }
}

/// A complete scene: background + objects + sensor noise.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneTemplate {
    /// Scene background.
    pub background: Background,
    /// Objects drawn over the background, in order.
    pub objects: Vec<ObjectSpec>,
    /// Speckle-noise amplitude applied after drawing.
    pub noise: f32,
}

impl SceneTemplate {
    /// A template over a solid background with default noise.
    pub fn new(background: Background, objects: Vec<ObjectSpec>) -> Self {
        Self {
            background,
            objects,
            noise: 0.02,
        }
    }

    /// Renders one `width × height` sample of this scene.
    pub fn render<R: Rng>(&self, width: usize, height: usize, rng: &mut R) -> Image {
        let mut img = Image::filled(width, height, [0.0; 3]);
        let (w, h) = (width as f32, height as f32);
        let unit = w.min(h);

        match &self.background {
            Background::Solid(c) => draw::fill(&mut img, *c),
            Background::Gradient(top, bottom) => draw::vertical_gradient(&mut img, *top, *bottom),
            Background::Stripes(a, b, period) => {
                draw::stripes(&mut img, *a, *b, ((period * h) as usize).max(2))
            }
            Background::Checker(a, b, cell) => {
                draw::checker(&mut img, *a, *b, ((cell * w) as usize).max(1))
            }
            Background::Clutter {
                base,
                palette,
                density,
                max_radius,
            } => {
                draw::fill(&mut img, *base);
                let count = ((density * (width * height) as f32) / 1000.0).ceil() as usize;
                draw::clutter(&mut img, palette, count, max_radius * unit, rng);
            }
        }

        for obj in &self.objects {
            let jitter = |r: &mut R, amt: f32| (r.random::<f32>() * 2.0 - 1.0) * amt;
            let cx = (obj.center.0 + jitter(rng, obj.pos_jitter)) * w;
            let cy = (obj.center.1 + jitter(rng, obj.pos_jitter)) * h;
            let scale = 1.0 + jitter(rng, obj.size_jitter);
            let angle = obj.angle + jitter(rng, obj.angle_jitter);
            let color = [
                (obj.color[0] + jitter(rng, obj.color_jitter)).clamp(0.0, 1.0),
                (obj.color[1] + jitter(rng, obj.color_jitter)).clamp(0.0, 1.0),
                (obj.color[2] + jitter(rng, obj.color_jitter)).clamp(0.0, 1.0),
            ];
            match obj.shape {
                Shape::Ellipse { rx, ry } => draw::fill_ellipse(
                    &mut img,
                    cx,
                    cy,
                    rx * unit * scale,
                    ry * unit * scale,
                    angle,
                    color,
                ),
                Shape::Rect { hw, hh } => draw::fill_rect(
                    &mut img,
                    cx,
                    cy,
                    hw * unit * scale,
                    hh * unit * scale,
                    angle,
                    color,
                ),
                Shape::Triangle { hw, hh } => draw::fill_triangle(
                    &mut img,
                    cx,
                    cy,
                    hw * unit * scale,
                    hh * unit * scale,
                    angle,
                    color,
                ),
                Shape::Bar { len, half_thick } => {
                    let half = len * unit * scale / 2.0;
                    let (s, c) = angle.sin_cos();
                    draw::fill_bar(
                        &mut img,
                        cx - half * c,
                        cy - half * s,
                        cx + half * c,
                        cy + half * s,
                        half_thick * unit * scale,
                        color,
                    );
                }
            }
        }

        if self.noise > 0.0 {
            draw::speckle(&mut img, self.noise, rng);
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sedan_template(angle: f32) -> SceneTemplate {
        SceneTemplate::new(
            Background::Gradient([0.6, 0.75, 0.9], [0.4, 0.45, 0.4]),
            vec![
                ObjectSpec::new(
                    Shape::Rect { hw: 0.3, hh: 0.12 },
                    [0.95, 0.95, 0.95],
                    (0.5, 0.6),
                    angle,
                ),
                ObjectSpec::new(
                    Shape::Ellipse { rx: 0.06, ry: 0.06 },
                    [0.05, 0.05, 0.05],
                    (0.3, 0.75),
                    0.0,
                ),
            ],
        )
    }

    #[test]
    fn render_is_deterministic_for_a_seed() {
        let t = sedan_template(0.0);
        let a = t.render(32, 32, &mut StdRng::seed_from_u64(99));
        let b = t.render(32, 32, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_jitter_the_scene() {
        let t = sedan_template(0.0);
        let a = t.render(32, 32, &mut StdRng::seed_from_u64(1));
        let b = t.render(32, 32, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn all_backgrounds_render() {
        let backgrounds = vec![
            Background::Solid([0.2, 0.2, 0.8]),
            Background::Gradient([1.0, 1.0, 1.0], [0.0, 0.0, 0.0]),
            Background::Stripes([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], 0.2),
            Background::Checker([1.0, 1.0, 0.0], [0.0, 0.0, 0.0], 0.1),
            Background::Clutter {
                base: [0.1, 0.3, 0.1],
                palette: vec![[0.9, 0.9, 0.2], [0.2, 0.9, 0.9]],
                density: 5.0,
                max_radius: 0.05,
            },
        ];
        let mut rng = StdRng::seed_from_u64(5);
        for bg in backgrounds {
            let t = SceneTemplate::new(bg, vec![]);
            let img = t.render(24, 24, &mut rng);
            assert_eq!(img.width(), 24);
        }
    }

    #[test]
    fn all_shapes_paint_pixels() {
        let shapes = [
            Shape::Ellipse { rx: 0.2, ry: 0.15 },
            Shape::Rect { hw: 0.2, hh: 0.1 },
            Shape::Triangle { hw: 0.2, hh: 0.2 },
            Shape::Bar {
                len: 0.5,
                half_thick: 0.03,
            },
        ];
        let mut rng = StdRng::seed_from_u64(11);
        for shape in shapes {
            let mut t = SceneTemplate::new(
                Background::Solid([0.0; 3]),
                vec![ObjectSpec::new(shape, [1.0, 0.0, 0.0], (0.5, 0.5), 0.2)],
            );
            t.noise = 0.0;
            let img = t.render(32, 32, &mut rng);
            let red = img
                .pixels()
                .iter()
                .filter(|p| p[0] > 0.5 && p[1] < 0.3)
                .count();
            assert!(red > 3, "{shape:?} painted {red} pixels");
        }
    }

    #[test]
    fn same_template_renders_are_more_alike_than_cross_template() {
        // Mean per-pixel L1 difference between renders of the same template
        // must be smaller than between renders of visually distinct templates.
        let side = sedan_template(0.0);
        let front = SceneTemplate::new(
            Background::Solid([0.1, 0.5, 0.1]),
            vec![ObjectSpec::new(
                Shape::Triangle { hw: 0.3, hh: 0.3 },
                [0.9, 0.2, 0.2],
                (0.5, 0.5),
                0.0,
            )],
        );
        let mut rng = StdRng::seed_from_u64(42);
        let s1 = side.render(32, 32, &mut rng);
        let s2 = side.render(32, 32, &mut rng);
        let f1 = front.render(32, 32, &mut rng);
        let diff = |a: &Image, b: &Image| -> f32 {
            a.pixels()
                .iter()
                .zip(b.pixels())
                .map(|(p, q)| (p[0] - q[0]).abs() + (p[1] - q[1]).abs() + (p[2] - q[2]).abs())
                .sum::<f32>()
                / a.pixels().len() as f32
        };
        assert!(diff(&s1, &s2) < diff(&s1, &f1));
    }

    #[test]
    fn noise_zero_gives_flat_background_regions() {
        let mut t = SceneTemplate::new(Background::Solid([0.3, 0.3, 0.3]), vec![]);
        t.noise = 0.0;
        let img = t.render(8, 8, &mut StdRng::seed_from_u64(0));
        assert!(img.pixels().iter().all(|&p| p == [0.3, 0.3, 0.3]));
    }
}
