//! R\*-tree persistence.
//!
//! A CBIR deployment builds its index once over the image database and
//! serves queries from it for months; rebuilding a 15k-image R\*-tree by
//! insertion costs seconds of CPU while loading it from disk costs
//! milliseconds. The format (`QDT2`) is a straightforward little-endian dump
//! of the node arena plus the contiguous SoA feature block; `NodeId` handles
//! remain valid across save/load, which the RFS structure relies on (its
//! representative lists are keyed by `NodeId`). Files in the pre-arena
//! `QDT1` format are rejected with a distinct error rather than misread.

use crate::rect::Rect;
use crate::tree::{read_tree, write_tree, RStarTree};
use std::io;
use std::path::Path;

/// Serializes the tree to bytes.
pub fn to_bytes(tree: &RStarTree) -> Vec<u8> {
    let mut out = Vec::new();
    write_tree(tree, &mut out);
    out
}

/// Deserializes a tree from bytes produced by [`to_bytes`].
pub fn from_bytes(data: &[u8]) -> io::Result<RStarTree> {
    if let Some(payload) = qd_fault::fire(qd_fault::site::INDEX_SHORT_READ) {
        // Torn read: parse a deterministic, payload-chosen prefix; the
        // length-checked reader rejects it with a typed error, never panics.
        return read_tree(&data[..payload as usize % (data.len() + 1)]);
    }
    read_tree(data)
}

/// Saves the tree to `path`.
pub fn save(tree: &RStarTree, path: &Path) -> io::Result<()> {
    if qd_fault::should_fail(qd_fault::site::INDEX_WRITE) {
        return Err(io::Error::other("injected fault: index persist write"));
    }
    std::fs::write(path, to_bytes(tree))
}

/// Loads a tree from `path`.
pub fn load(path: &Path) -> io::Result<RStarTree> {
    let data = std::fs::read(path)?;
    if qd_fault::should_fail(qd_fault::site::INDEX_READ) {
        return Err(io::Error::other("injected fault: index persist read"));
    }
    from_bytes(&data)
}

/// Serializes a rectangle (used by the tree writer).
pub(crate) fn write_rect(out: &mut Vec<u8>, rect: &Rect) {
    for v in rect.min().iter().chain(rect.max()) {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qd_index_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn random_tree(n: usize, seed: u64) -> RStarTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RStarTree::new(TreeConfig::small(3));
        for id in 0..n as u64 {
            let p: Vec<f32> = (0..3).map(|_| rng.random::<f32>() * 10.0).collect();
            tree.insert(p, id);
        }
        tree
    }

    #[test]
    fn save_load_preserves_structure_and_answers() {
        let tree = random_tree(300, 1);
        let path = tmp("roundtrip.qdt");
        save(&tree, &path).unwrap();
        let loaded = load(&path).unwrap();
        loaded.validate();
        assert_eq!(loaded.len(), tree.len());
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.root(), tree.root());
        // Node handles survive: every node's rect and children match.
        let mut a = tree.node_ids();
        let mut b = loaded.node_ids();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        for n in a {
            assert_eq!(tree.level(n), loaded.level(n));
            assert_eq!(tree.children(n), loaded.children(n));
            assert_eq!(
                tree.node_rect(n).map(|r| r.min().to_vec()),
                loaded.node_rect(n).map(|r| r.min().to_vec())
            );
        }
        // Queries answer identically.
        let q = [5.0, 5.0, 5.0];
        let got: Vec<u64> = loaded.knn(&q, 25).into_iter().map(|x| x.id).collect();
        let want: Vec<u64> = tree.knn(&q, 25).into_iter().map(|x| x.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn loaded_tree_remains_mutable() {
        let tree = random_tree(100, 2);
        let path = tmp("mutable.qdt");
        save(&tree, &path).unwrap();
        let mut loaded = load(&path).unwrap();
        loaded.insert(vec![1.0, 2.0, 3.0], 9999);
        assert_eq!(loaded.len(), 101);
        loaded.validate();
        assert!(loaded.remove(&[1.0, 2.0, 3.0], 9999));
        loaded.validate();
    }

    #[test]
    fn load_rejects_corruption() {
        let tree = random_tree(60, 3);
        let path = tmp("corrupt.qdt");
        save(&tree, &path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data.truncate(data.len() - 10);
        std::fs::write(&path, &data).unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, b"nonsense").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tree_with_holes_roundtrips() {
        // Deletions leave free slots in the arena; those must survive.
        let mut tree = random_tree(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<(u64, Vec<f32>)> = tree
            .subtree_items(tree.root())
            .into_iter()
            .map(|(id, p)| (id, p.to_vec()))
            .collect();
        for (id, p) in items.iter().take(120) {
            assert!(tree.remove(p, *id));
        }
        let _ = &mut rng;
        let path = tmp("holes.qdt");
        save(&tree, &path).unwrap();
        let loaded = load(&path).unwrap();
        loaded.validate();
        assert_eq!(loaded.len(), tree.len());
        // And further inserts reuse the free list without clobbering.
        let mut loaded = loaded;
        for id in 1000..1050u64 {
            loaded.insert(vec![1.0, 1.0, 1.0], id);
        }
        loaded.validate();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_tree_roundtrips() {
        let tree = RStarTree::new(TreeConfig::small(2));
        let path = tmp("empty.qdt");
        save(&tree, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert!(loaded.is_empty());
        loaded.validate();
        std::fs::remove_file(&path).ok();
    }
}
