//! Read/build abstraction over the R\*-tree.
//!
//! Born as the seam of the differential arena-equivalence harness: `qd-core`'s
//! RFS builder and the localized-k-NN executor are generic over [`KnnIndex`],
//! so during the arena refactor the exact same build and query code ran
//! against both the arena tree ([`crate::RStarTree`]) and the since-retired
//! pre-arena reference implementation, attributing any observable divergence
//! to the storage layout alone. The reference tree is gone (its behavior is
//! pinned by the golden snapshots in `tests/arena_equivalence.rs`); the trait
//! stays as the structural/query surface the RFS layer builds against.

use crate::rect::Rect;
use crate::tree::{BudgetedKnn, NodeId, TreeConfig};

/// Read-only structural and query access shared by both tree layouts.
pub trait KnnIndex {
    /// Root node handle.
    fn root(&self) -> NodeId;
    /// Point dimensionality.
    fn dims(&self) -> usize;
    /// Number of stored points.
    fn len(&self) -> usize;
    /// True if no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Tree height in levels.
    fn height(&self) -> usize;
    /// Number of live nodes.
    fn node_count(&self) -> usize;
    /// All live node handles.
    fn node_ids(&self) -> Vec<NodeId>;
    /// True if `n` is a live node of this tree.
    fn contains_node(&self, n: NodeId) -> bool;
    /// Level of `n` (0 = leaf).
    fn level(&self, n: NodeId) -> u32;
    /// True if `n` is a leaf.
    fn is_leaf(&self, n: NodeId) -> bool;
    /// Parent of `n`, if any.
    fn parent(&self, n: NodeId) -> Option<NodeId>;
    /// Bounding rectangle of `n`.
    fn node_rect(&self, n: NodeId) -> Option<&Rect>;
    /// Children of `n`, in order; empty for leaves.
    fn children(&self, n: NodeId) -> Vec<NodeId>;
    /// `(id, point)` pairs stored directly in leaf `n`.
    fn leaf_items(&self, n: NodeId) -> Vec<(u64, &[f32])>;
    /// All `(id, point)` pairs stored under `n`.
    fn subtree_items(&self, n: NodeId) -> Vec<(u64, &[f32])>;
    /// Number of points stored under `n`.
    fn subtree_len(&self, n: NodeId) -> usize;
    /// Budgeted localized k-NN (see [`crate::RStarTree::knn_in_budgeted`]).
    fn knn_in_budgeted(
        &self,
        scope: NodeId,
        query: &[f32],
        k: usize,
        budget: Option<u64>,
    ) -> BudgetedKnn;
    /// Non-panicking structural invariant check.
    fn check_invariants(&self) -> Result<(), String>;
    /// Panicking invariant check (tests).
    fn validate(&self);
}

/// Construction entry points shared by both tree layouts.
pub trait IndexBuild: KnnIndex + Sized {
    /// Creates an empty tree.
    fn new(config: TreeConfig) -> Self;
    /// Bulk-loads a tree by recursive tiling.
    fn bulk_load(config: TreeConfig, items: Vec<(u64, Vec<f32>)>) -> Self;
    /// Inserts one point.
    fn insert(&mut self, point: Vec<f32>, id: u64);
}

impl KnnIndex for crate::RStarTree {
    fn root(&self) -> NodeId {
        crate::RStarTree::root(self)
    }
    fn dims(&self) -> usize {
        crate::RStarTree::dims(self)
    }
    fn len(&self) -> usize {
        crate::RStarTree::len(self)
    }
    fn height(&self) -> usize {
        crate::RStarTree::height(self)
    }
    fn node_count(&self) -> usize {
        crate::RStarTree::node_count(self)
    }
    fn node_ids(&self) -> Vec<NodeId> {
        crate::RStarTree::node_ids(self)
    }
    fn contains_node(&self, n: NodeId) -> bool {
        crate::RStarTree::contains_node(self, n)
    }
    fn level(&self, n: NodeId) -> u32 {
        crate::RStarTree::level(self, n)
    }
    fn is_leaf(&self, n: NodeId) -> bool {
        crate::RStarTree::is_leaf(self, n)
    }
    fn parent(&self, n: NodeId) -> Option<NodeId> {
        crate::RStarTree::parent(self, n)
    }
    fn node_rect(&self, n: NodeId) -> Option<&Rect> {
        crate::RStarTree::node_rect(self, n)
    }
    fn children(&self, n: NodeId) -> Vec<NodeId> {
        crate::RStarTree::children(self, n)
    }
    fn leaf_items(&self, n: NodeId) -> Vec<(u64, &[f32])> {
        crate::RStarTree::leaf_entries(self, n).collect()
    }
    fn subtree_items(&self, n: NodeId) -> Vec<(u64, &[f32])> {
        crate::RStarTree::subtree_items(self, n)
    }
    fn subtree_len(&self, n: NodeId) -> usize {
        crate::RStarTree::subtree_len(self, n)
    }
    fn knn_in_budgeted(
        &self,
        scope: NodeId,
        query: &[f32],
        k: usize,
        budget: Option<u64>,
    ) -> BudgetedKnn {
        crate::RStarTree::knn_in_budgeted(self, scope, query, k, budget)
    }
    fn check_invariants(&self) -> Result<(), String> {
        crate::RStarTree::check_invariants(self)
    }
    fn validate(&self) {
        crate::RStarTree::validate(self)
    }
}

impl IndexBuild for crate::RStarTree {
    fn new(config: TreeConfig) -> Self {
        crate::RStarTree::new(config)
    }
    fn bulk_load(config: TreeConfig, items: Vec<(u64, Vec<f32>)>) -> Self {
        crate::RStarTree::bulk_load(config, items)
    }
    fn insert(&mut self, point: Vec<f32>, id: u64) {
        crate::RStarTree::insert(self, point, id)
    }
}
