#![warn(missing_docs)]

//! An R\*-tree over feature-space points.
//!
//! The paper's Relevance Feedback Support structure is "constructed by
//! hierarchically clustering the images in the database … similar to the
//! R\*-tree" (§3.1), with node capacities of 70–100 images producing a
//! 3-level hierarchy over the 15,000-image database. This crate is that
//! substrate: a from-scratch R\*-tree (Beckmann et al., SIGMOD 1990) with
//!
//! * full R\* insertion — `ChooseSubtree` with minimum overlap enlargement at
//!   the leaf level, `OverflowTreatment` with forced reinsertion (p = 30 %),
//!   and the topological margin/overlap split;
//! * deletion with tree condensation and orphan reinsertion;
//! * best-first (branch-and-bound) k-nearest-neighbor search, both global and
//!   restricted to a subtree — the latter is what makes the paper's
//!   *localized* k-NN computations cheap;
//! * bounding-rectangle range search;
//! * a bulk loader (kd-style recursive tiling) for construction-cost
//!   comparisons;
//! * node-access accounting, the unit in which §5.2.2 measures I/O cost;
//! * structural exposure (node ids, levels, rectangles, children) so the RFS
//!   builder in `qd-core` can attach representative images to every cluster.
//!
//! The tree stores owned points (`Vec<f32>`) tagged with caller-assigned
//! `u64` ids; for the CBIR workload these are image ids.

pub mod persist;
pub mod rect;
pub mod traits;
pub mod tree;

pub use rect::Rect;
pub use traits::{IndexBuild, KnnIndex};
pub use tree::{BudgetedKnn, Neighbor, NodeId, RStarTree, TreeConfig};
