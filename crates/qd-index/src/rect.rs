//! Axis-aligned minimum bounding rectangles in D dimensions.

/// An axis-aligned bounding box in `dim()` dimensions.
///
/// Degenerate boxes (`min == max`) represent points. Extent products are
/// accumulated in `f64`: with 37 dimensions the volume of a normalized
/// feature-space rectangle under- or overflows `f32` easily.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    min: Vec<f32>,
    max: Vec<f32>,
}

impl Rect {
    /// Creates a rectangle from corner vectors.
    ///
    /// # Panics
    /// Panics if lengths differ, are zero, or any `min > max`.
    pub fn new(min: Vec<f32>, max: Vec<f32>) -> Self {
        assert_eq!(min.len(), max.len(), "corner length mismatch");
        assert!(!min.is_empty(), "zero-dimensional rectangle");
        for (lo, hi) in min.iter().zip(&max) {
            assert!(lo <= hi, "inverted rectangle: {lo} > {hi}");
        }
        Self { min, max }
    }

    /// A degenerate rectangle containing exactly `point`.
    pub fn point(point: &[f32]) -> Self {
        Self::new(point.to_vec(), point.to_vec())
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Lower corner.
    #[inline]
    pub fn min(&self) -> &[f32] {
        &self.min
    }

    /// Upper corner.
    #[inline]
    pub fn max(&self) -> &[f32] {
        &self.max
    }

    /// Geometric center.
    pub fn center(&self) -> Vec<f32> {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| (lo + hi) / 2.0)
            .collect()
    }

    /// Volume (product of extents).
    pub fn area(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| (hi - lo) as f64)
            .product()
    }

    /// Margin (sum of extents) — the R\* split quality measure.
    pub fn margin(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| (hi - lo) as f64)
            .sum()
    }

    /// Length of the main diagonal — the scale used by the paper's boundary
    /// ratio test (§3.3).
    pub fn diagonal(&self) -> f32 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| ((hi - lo) as f64).powi(2))
            .sum::<f64>()
            // CAST: f64-accumulated diagonal narrowed back to the f32
            // geometry domain; a heuristic quantity, rounding is harmless.
            .sqrt() as f32
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        Rect {
            min: self
                .min
                .iter()
                .zip(&other.min)
                .map(|(a, b)| a.min(*b))
                .collect(),
            max: self
                .max
                .iter()
                .zip(&other.max)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Grows `self` in place to cover `other`.
    pub fn enlarge(&mut self, other: &Rect) {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.min.iter_mut().zip(&other.min) {
            *a = a.min(*b);
        }
        for (a, b) in self.max.iter_mut().zip(&other.max) {
            *a = a.max(*b);
        }
    }

    /// Increase in area needed to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True if the rectangles share any point (boundary contact counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }

    /// Volume of the intersection; 0 when disjoint.
    pub fn overlap(&self, other: &Rect) -> f64 {
        let mut v = 1.0f64;
        for ((alo, ahi), (blo, bhi)) in self
            .min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
        {
            let lo = alo.max(*blo);
            let hi = ahi.min(*bhi);
            if lo >= hi {
                return 0.0;
            }
            v *= (hi - lo) as f64;
        }
        v
    }

    /// True if `point` lies inside (boundary inclusive).
    pub fn contains_point(&self, point: &[f32]) -> bool {
        debug_assert_eq!(self.dim(), point.len(), "dimension mismatch");
        self.min
            .iter()
            .zip(&self.max)
            .zip(point)
            .all(|((lo, hi), p)| lo <= p && p <= hi)
    }

    /// True if `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((alo, ahi), (blo, bhi))| alo <= blo && bhi <= ahi)
    }

    /// Squared Euclidean distance from `point` to the nearest point of the
    /// rectangle (0 when inside) — the MINDIST bound of branch-and-bound
    /// k-NN search.
    pub fn min_dist2(&self, point: &[f32]) -> f64 {
        debug_assert_eq!(self.dim(), point.len(), "dimension mismatch");
        self.min
            .iter()
            .zip(&self.max)
            .zip(point)
            .map(|((lo, hi), p)| {
                let d = if p < lo {
                    lo - p
                } else if p > hi {
                    p - hi
                } else {
                    0.0
                };
                (d as f64).powi(2)
            })
            .sum()
    }

    /// Squared distance from `point` to the rectangle's center.
    pub fn center_dist2(&self, point: &[f32]) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .zip(point)
            .map(|((lo, hi), p)| {
                let c = (lo + hi) / 2.0;
                ((p - c) as f64).powi(2)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(min: &[f32], max: &[f32]) -> Rect {
        Rect::new(min.to_vec(), max.to_vec())
    }

    #[test]
    fn point_rect_has_zero_extent() {
        let p = Rect::point(&[1.0, 2.0, 3.0]);
        assert_eq!(p.area(), 0.0);
        assert_eq!(p.margin(), 0.0);
        assert_eq!(p.diagonal(), 0.0);
        assert!(p.contains_point(&[1.0, 2.0, 3.0]));
        assert!(!p.contains_point(&[1.0, 2.0, 3.1]));
    }

    #[test]
    fn area_and_margin_match_hand_computation() {
        let b = r(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(b.area(), 6.0);
        assert_eq!(b.margin(), 5.0);
        assert!((b.diagonal() - 13.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn union_covers_both() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, -1.0], &[3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(&[0.0, -1.0], &[3.0, 1.0]));
    }

    #[test]
    fn enlarge_matches_union() {
        let mut a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[-1.0, 0.5], &[0.5, 2.0]);
        let u = a.union(&b);
        a.enlarge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn enlargement_is_zero_for_contained_rect() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn intersection_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert!(a.intersects(&r(&[1.0, 1.0], &[3.0, 3.0])));
        assert!(a.intersects(&r(&[2.0, 0.0], &[3.0, 1.0]))); // touching
        assert!(!a.intersects(&r(&[2.1, 0.0], &[3.0, 1.0])));
    }

    #[test]
    fn overlap_volume() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(b.overlap(&a), 1.0);
        assert_eq!(a.overlap(&r(&[5.0, 5.0], &[6.0, 6.0])), 0.0);
        // Touching rectangles have zero overlap volume.
        assert_eq!(a.overlap(&r(&[2.0, 0.0], &[3.0, 2.0])), 0.0);
    }

    #[test]
    fn min_dist2_is_zero_inside_and_positive_outside() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(a.min_dist2(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist2(&[2.0, 2.0]), 0.0); // on the boundary
        assert_eq!(a.min_dist2(&[3.0, 2.0]), 1.0);
        assert_eq!(a.min_dist2(&[3.0, 3.0]), 2.0);
        assert_eq!(a.min_dist2(&[-1.0, 1.0]), 1.0);
    }

    #[test]
    fn min_dist2_lower_bounds_distance_to_any_contained_point() {
        let a = r(&[0.0, -1.0], &[2.0, 1.0]);
        let q = [5.0, 5.0];
        let corner_d2 = (5.0f64 - 2.0).powi(2) + (5.0f64 - 1.0).powi(2);
        assert!(a.min_dist2(&q) <= corner_d2);
    }

    #[test]
    fn center_and_center_dist() {
        let a = r(&[0.0, 0.0], &[4.0, 2.0]);
        assert_eq!(a.center(), vec![2.0, 1.0]);
        assert_eq!(a.center_dist2(&[2.0, 1.0]), 0.0);
        assert_eq!(a.center_dist2(&[2.0, 3.0]), 4.0);
    }

    #[test]
    fn high_dimensional_area_does_not_underflow() {
        // 37 extents of 0.1 → 1e-37, below f32 normal range but fine in f64.
        let min = vec![0.0f32; 37];
        let max = vec![0.1f32; 37];
        let b = Rect::new(min, max);
        assert!(b.area() > 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        r(&[1.0], &[0.0]);
    }
}
