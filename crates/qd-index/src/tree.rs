//! The R\*-tree proper.
//!
//! Arena-based twice over: nodes live in one `Vec` and refer to each other
//! through compact u32 indices ([`NodeId`] handles, `first_child` /
//! `next_sibling` links), and every stored feature vector lives in one
//! contiguous structure-of-arrays block (the [`FeatureStore`]) so localized
//! k-NN leaf scans are cache-linear. Leaves hold u32 slot indices into the
//! store instead of owning their points. The layout contract is documented
//! in DESIGN.md §11; `tests/arena_equivalence.rs` proves the layout change
//! is unobservable next to the pre-arena implementation (`crate::legacy`).
//!
//! Budgeted k-NN additionally applies norm-based lower-bound pruning:
//! `|‖p‖ − ‖q‖| ≤ ‖p − q‖`, so a leaf entry whose norm gap already exceeds
//! the k-th best distance seen can skip its full distance evaluation. The
//! pruning is purely an evaluation shortcut — the distance-computation
//! *accounting* (`distance_computations`, the budget currency) still charges
//! exactly what an unpruned scan would, so budgets exhaust at identical
//! points and rankings, counters, and golden traces are bit-identical;
//! skipped evaluations are reported separately in
//! [`BudgetedKnn::distances_pruned`].

use crate::rect::Rect;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Handle to a tree node. Stable across inserts; invalidated only when the
/// node itself is removed by deletion-condensation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index (for debug displays).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Handle with the given raw index. The inverse of [`NodeId::index`];
    /// composite indexes (e.g. `qd-shard`'s `shard * stride + local`
    /// encoding) round-trip through this without the arena's involvement.
    ///
    /// # Panics
    /// Panics when `index` does not fit the arena's u32 handles or equals
    /// `u32::MAX` (the internal "no node" sentinel).
    pub fn from_index(index: usize) -> Self {
        assert!(
            index < u32::MAX as usize,
            "node index {index} out of u32 handle range"
        );
        NodeId(index as u32) // CAST: asserted above to fit u32 below the NONE sentinel.
    }
}

/// Sentinel for "no node" in the u32 link fields (`parent`, `next_sibling`,
/// `first_child`). An arena of `u32::MAX` nodes is unreachable in practice.
const NONE: u32 = u32::MAX;

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Point dimensionality.
    pub dims: usize,
    /// Minimum entries per node (`m`). Must satisfy `2 ≤ m ≤ max_entries/2`.
    pub min_entries: usize,
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Fraction of entries evicted by forced reinsertion (R\* recommends 0.3).
    pub reinsert_fraction: f32,
}

impl TreeConfig {
    /// The paper's database configuration: node capacity 100. The paper
    /// quotes a 70–100 occupancy band, which is a *bulk-construction* target;
    /// a dynamic R\*-tree requires `m ≤ M/2` for splits to be well defined,
    /// so the maintenance minimum here is the R\* default of 40 %. The bulk
    /// loader's median tiling naturally yields leaves in the 50–100 range.
    pub fn paper(dims: usize) -> Self {
        Self {
            dims,
            min_entries: 40,
            max_entries: 100,
            reinsert_fraction: 0.3,
        }
    }

    /// A small-fan-out configuration handy for tests.
    pub fn small(dims: usize) -> Self {
        Self {
            dims,
            min_entries: 2,
            max_entries: 5,
            reinsert_fraction: 0.3,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.dims > 0, "dims must be positive");
        assert!(self.min_entries >= 2, "min_entries must be at least 2");
        assert!(
            self.min_entries * 2 <= self.max_entries,
            "min_entries must be at most half of max_entries"
        );
        assert!(
            (0.0..0.5).contains(&self.reinsert_fraction),
            "reinsert_fraction must be in [0, 0.5)"
        );
    }
}

/// A k-NN result: data id plus Euclidean distance to the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// Caller-assigned data id (the image id in the CBIR workload).
    pub id: u64,
    /// Euclidean distance to the query point.
    pub distance: f32,
}

/// The answer of [`RStarTree::knn_in_budgeted`]: best-so-far neighbors plus
/// the deterministic cost accounting behind graceful degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedKnn {
    /// Neighbors found, ascending by distance; exactly the unbudgeted answer
    /// when `exhausted` is false, a valid best-so-far prefix otherwise.
    pub neighbors: Vec<Neighbor>,
    /// Node reads performed (call-local, same unit as [`RStarTree::knn_in_counted`]).
    pub accesses: u64,
    /// Distance evaluations performed (leaf-entry distances + child-rectangle
    /// MINDIST evaluations) — the budget's currency. Charged as if no pruning
    /// happened, so budgets and degradation reports are layout-independent.
    pub distance_computations: u64,
    /// Leaf-entry distance evaluations skipped by the norm lower bound.
    /// Always ≤ `distance_computations`; purely informational — pruned
    /// entries are still charged to the budget like a full evaluation.
    pub distances_pruned: u64,
    /// Frontier nodes left unexpanded because the budget ran out.
    pub nodes_skipped: u64,
    /// Index partitions whose scatter leg was dropped from the answer
    /// (panicked worker or merge-time refusal). Always 0 for a single
    /// monolithic tree; a sharded index (`qd-shard`) reports its lost legs
    /// here so sessions can account whole-shard loss as degradation.
    pub partitions_dropped: u64,
    /// True when the budget ran out before the search completed.
    pub exhausted: bool,
}

/// Relative slack on the squared norm lower bound. The bound must only fire
/// when the *computed* `dist2` (f32 subtraction per coordinate, ≤ ~2⁻²³
/// relative error) provably exceeds the k-th best distance; 1e-6 covers that
/// rounding with an order of magnitude to spare.
const PRUNE_SLACK: f64 = 1.0 + 1e-6;

/// Contiguous structure-of-arrays storage for every feature vector in the
/// tree: `data[slot*dims .. (slot+1)*dims]` is the point of `slot`, with the
/// caller id and the precomputed f64 Euclidean norm (for lower-bound
/// pruning) in parallel arrays. Slots are recycled through a free list;
/// norms are recomputed on load rather than serialized.
#[derive(Debug)]
pub(crate) struct FeatureStore {
    dims: usize,
    ids: Vec<u64>,
    data: Vec<f32>,
    norms: Vec<f64>,
    live: Vec<bool>,
    free: Vec<u32>,
}

impl FeatureStore {
    fn new(dims: usize) -> Self {
        Self {
            dims,
            ids: Vec::new(),
            data: Vec::new(),
            norms: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
        }
    }

    fn slot_count(&self) -> usize {
        self.ids.len()
    }

    fn alloc(&mut self, id: u64, point: &[f32]) -> u32 {
        debug_assert_eq!(point.len(), self.dims);
        let norm = norm_of(point);
        if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            self.ids[s] = id;
            self.data[s * self.dims..(s + 1) * self.dims].copy_from_slice(point);
            self.norms[s] = norm;
            self.live[s] = true;
            slot
        } else {
            // CAST: slot indices are u32 by arena design; a tree would need
            // 2^32 stored points to overflow, far past the 15k corpus scale.
            let slot = self.ids.len() as u32;
            self.ids.push(id);
            self.data.extend_from_slice(point);
            self.norms.push(norm);
            self.live.push(true);
            slot
        }
    }

    fn release(&mut self, slot: u32) {
        self.live[slot as usize] = false;
        self.free.push(slot);
    }

    #[inline]
    fn point(&self, slot: u32) -> &[f32] {
        let s = slot as usize;
        &self.data[s * self.dims..(s + 1) * self.dims]
    }

    #[inline]
    fn id(&self, slot: u32) -> u64 {
        self.ids[slot as usize]
    }

    #[inline]
    fn norm(&self, slot: u32) -> f64 {
        self.norms[slot as usize]
    }
}

/// Euclidean norm in f64 (exact squares of f32 values, f64 accumulation).
fn norm_of(point: &[f32]) -> f64 {
    point
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt()
}

#[derive(Debug)]
enum NodeKind {
    /// Feature-store slots of the entries stored here.
    Leaf(Vec<u32>),
    /// Head of the sibling-linked child chain plus its length.
    Internal { first_child: u32, count: u32 },
}

#[derive(Debug)]
struct Node {
    rect: Option<Rect>,
    /// Arena index of the parent; `NONE` for the root (and detached nodes).
    parent: u32,
    /// Arena index of the next sibling in the parent's child chain.
    next_sibling: u32,
    /// Leaves are level 0; the root has the highest level.
    level: u32,
    kind: NodeKind,
    live: bool,
}

impl Node {
    fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(d) => d.len(),
            NodeKind::Internal { count, .. } => *count as usize,
        }
    }
}

/// Orphaned entry produced by condensation/reinsertion. Data orphans carry
/// their feature-store slot, so reinsertion never copies the vector.
enum Orphan {
    Data(u32),
    Subtree(NodeId),
}

/// The R\*-tree.
///
/// ```
/// use qd_index::{RStarTree, TreeConfig};
///
/// let mut tree = RStarTree::new(TreeConfig::small(2));
/// tree.insert(vec![0.0, 0.0], 1);
/// tree.insert(vec![5.0, 5.0], 2);
/// tree.insert(vec![0.2, 0.1], 3);
///
/// let nearest = tree.knn(&[0.0, 0.0], 2);
/// assert_eq!(nearest[0].id, 1);
/// assert_eq!(nearest[1].id, 3);
/// ```
#[derive(Debug)]
pub struct RStarTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: NodeId,
    len: usize,
    store: FeatureStore,
    accesses: AtomicU64,
}

impl RStarTree {
    /// Creates an empty tree.
    ///
    /// # Panics
    /// Panics on an invalid [`TreeConfig`].
    pub fn new(config: TreeConfig) -> Self {
        config.validate();
        let root = Node {
            rect: None,
            parent: NONE,
            next_sibling: NONE,
            level: 0,
            kind: NodeKind::Leaf(Vec::new()),
            live: true,
        };
        let store = FeatureStore::new(config.dims);
        Self {
            config,
            nodes: vec![root],
            free: Vec::new(),
            root: NodeId(0),
            len: 0,
            store,
            accesses: AtomicU64::new(0),
        }
    }

    /// Builds a tree by kd-style recursive tiling — cheaper than repeated
    /// insertion and producing well-separated leaves. Used for
    /// construction-cost comparisons and large benchmark corpora. Feature
    /// slots are allocated per tiled chunk, so each leaf's entries occupy a
    /// contiguous ascending run of the SoA block.
    ///
    /// # Panics
    /// Panics on an invalid config or a point with the wrong dimensionality.
    pub fn bulk_load(config: TreeConfig, items: Vec<(u64, Vec<f32>)>) -> Self {
        config.validate();
        let mut tree = Self::new(config);
        if items.is_empty() {
            return tree;
        }
        for (_, p) in &items {
            assert_eq!(p.len(), tree.config.dims, "point dimensionality mismatch");
        }
        tree.len = items.len();

        // Tile the raw items first (identical ordering decisions to the
        // insertion-order-preserving legacy tiler), then allocate feature
        // slots chunk by chunk so every leaf scans a contiguous run.
        let max = tree.config.max_entries;
        let dims = tree.config.dims;
        let mut entries = items;
        let chunks = partition_recursive(&mut entries, max, dims, |e, d| e.1[d]);
        tree.nodes.clear();
        let mut level_nodes: Vec<NodeId> = chunks
            .into_iter()
            .map(|chunk| {
                let slots: Vec<u32> = chunk
                    .into_iter()
                    .map(|(id, point)| tree.store.alloc(id, &point))
                    .collect();
                let rect = bounding_rect_of_slots(&tree.store, &slots);
                // CAST: node indices are u32 by arena design; the node count
                // is bounded by the point count, far below 2^32.
                let id = NodeId(tree.nodes.len() as u32);
                tree.nodes.push(Node {
                    rect: Some(rect),
                    parent: NONE,
                    next_sibling: NONE,
                    level: 0,
                    kind: NodeKind::Leaf(slots),
                    live: true,
                });
                id
            })
            .collect();

        // Build internal levels until a single root remains.
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let mut handles: Vec<(NodeId, Vec<f32>)> = level_nodes
                .iter()
                .map(|&n| {
                    let center = tree.nodes[n.index()]
                        .rect
                        .as_ref()
                        .expect("bulk-loaded node without rect")
                        .center();
                    (n, center)
                })
                .collect();
            let groups = partition_recursive(&mut handles, max, dims, |h, d| h.1[d]);
            level_nodes = groups
                .into_iter()
                .map(|group| {
                    let children: Vec<NodeId> = group.into_iter().map(|(n, _)| n).collect();
                    let rect = tree.rect_of_children(&children);
                    // CAST: node indices are u32 by arena design (see alloc).
                    let id = NodeId(tree.nodes.len() as u32);
                    tree.nodes.push(Node {
                        rect: Some(rect),
                        parent: NONE,
                        next_sibling: NONE,
                        level,
                        kind: NodeKind::Internal {
                            first_child: NONE,
                            count: 0,
                        },
                        live: true,
                    });
                    tree.link_children(id, &children);
                    id
                })
                .collect();
            level += 1;
        }
        tree.root = level_nodes[0];
        tree
    }

    /// Point dimensionality.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (a lone leaf root is height 1).
    pub fn height(&self) -> usize {
        self.nodes[self.root.index()].level as usize + 1
    }

    /// Root node handle.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All live node handles, in arbitrary order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        // CAST: the arena length fits u32 by design (see alloc).
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|n| self.nodes[n.index()].live)
            .collect()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.live).count()
    }

    /// True if `n` is a live node handle of *this* tree. Node accessors
    /// panic on dangling or foreign handles; serving paths that receive a
    /// handle from outside (e.g. a client's remote query) validate with this
    /// first and turn the answer into a typed error.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|node| node.live)
    }

    /// Level of `n` (0 = leaf).
    pub fn level(&self, n: NodeId) -> u32 {
        self.node(n).level
    }

    /// True if `n` is a leaf.
    pub fn is_leaf(&self, n: NodeId) -> bool {
        matches!(self.node(n).kind, NodeKind::Leaf(_))
    }

    /// Parent of `n`, if any.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.node(n).parent;
        (p != NONE).then_some(NodeId(p))
    }

    /// Bounding rectangle of `n` (`None` only for an empty root).
    pub fn node_rect(&self, n: NodeId) -> Option<&Rect> {
        self.node(n).rect.as_ref()
    }

    /// Children of an internal node (collected from the sibling chain, in
    /// chain order); empty for leaves.
    pub fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.child_iter(n).collect()
    }

    /// Iterates the sibling-linked child chain of `n` in order.
    fn child_iter(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let first = match &self.node(n).kind {
            NodeKind::Internal { first_child, .. } => *first_child,
            NodeKind::Leaf(_) => NONE,
        };
        std::iter::successors((first != NONE).then_some(NodeId(first)), move |c| {
            let next = self.nodes[c.index()].next_sibling;
            (next != NONE).then_some(NodeId(next))
        })
    }

    /// Collects the child chain into a `Vec` for mutation algorithms.
    fn child_vec(&self, n: NodeId) -> Vec<NodeId> {
        self.child_iter(n).collect()
    }

    /// Rewrites `parent`'s child chain to exactly `children` (in order) and
    /// points every child's parent link back at `parent`.
    fn link_children(&mut self, parent: NodeId, children: &[NodeId]) {
        self.chain_children(parent, children);
        for &c in children {
            self.nodes[c.index()].parent = parent.0;
        }
    }

    /// Rewrites `parent`'s child chain without touching the children's
    /// parent links (deserialization reads parents from the file and lets
    /// `check_invariants` cross-validate them against the chains).
    fn chain_children(&mut self, parent: NodeId, children: &[NodeId]) {
        let mut head = NONE;
        for &c in children.iter().rev() {
            self.nodes[c.index()].next_sibling = head;
            head = c.0;
        }
        match &mut self.nodes[parent.index()].kind {
            NodeKind::Internal { first_child, count } => {
                *first_child = head;
                // CAST: fan-out is capped by max_entries (~100), fits u32.
                *count = children.len() as u32;
            }
            NodeKind::Leaf(_) => unreachable!("chain_children on a leaf"),
        }
    }

    /// Appends `child` at the end of `parent`'s child chain.
    fn push_child(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[child.index()].next_sibling = NONE;
        self.nodes[child.index()].parent = parent.0;
        match &mut self.nodes[parent.index()].kind {
            NodeKind::Internal { first_child, count } => {
                *count += 1;
                if *first_child == NONE {
                    *first_child = child.0;
                    return;
                }
                let mut cur = *first_child;
                loop {
                    let next = self.nodes[cur as usize].next_sibling;
                    if next == NONE {
                        break;
                    }
                    cur = next;
                }
                self.nodes[cur as usize].next_sibling = child.0;
            }
            NodeKind::Leaf(_) => unreachable!("push_child on a leaf"),
        }
    }

    /// Unlinks `child` from `parent`'s chain (keeping the remaining order).
    fn remove_child(&mut self, parent: NodeId, child: NodeId) {
        let mut children = self.child_vec(parent);
        children.retain(|&c| c != child);
        self.chain_children(parent, &children);
    }

    /// `(id, point)` pairs stored in a leaf; empty for internal nodes.
    pub fn leaf_entries(&self, n: NodeId) -> impl Iterator<Item = (u64, &[f32])> {
        let slots: &[u32] = match &self.node(n).kind {
            NodeKind::Leaf(s) => s,
            NodeKind::Internal { .. } => &[],
        };
        slots
            .iter()
            .map(move |&s| (self.store.id(s), self.store.point(s)))
    }

    /// All `(id, point)` pairs stored under `n`.
    pub fn subtree_items(&self, n: NodeId) -> Vec<(u64, &[f32])> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            match &self.node(cur).kind {
                NodeKind::Leaf(slots) => out.extend(
                    slots
                        .iter()
                        .map(|&s| (self.store.id(s), self.store.point(s))),
                ),
                NodeKind::Internal { .. } => stack.extend(self.child_iter(cur)),
            }
        }
        out
    }

    /// Number of points stored under `n`.
    pub fn subtree_len(&self, n: NodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            match &self.node(cur).kind {
                NodeKind::Leaf(slots) => count += slots.len(),
                NodeKind::Internal { .. } => stack.extend(self.child_iter(cur)),
            }
        }
        count
    }

    /// Node accesses performed since the last [`Self::reset_accesses`] —
    /// the simulated-I/O unit of §5.2.2 (one access ≈ one disk page read).
    pub fn accesses(&self) -> u64 {
        self.accesses.load(AtomicOrdering::Relaxed)
    }

    /// Resets the node-access counter.
    pub fn reset_accesses(&self) {
        self.accesses.store(0, AtomicOrdering::Relaxed);
    }

    #[inline]
    fn touch(&self, _n: NodeId) {
        self.accesses.fetch_add(1, AtomicOrdering::Relaxed);
    }

    #[inline]
    fn node(&self, n: NodeId) -> &Node {
        let node = &self.nodes[n.index()];
        debug_assert!(node.live, "dangling NodeId");
        node
    }

    #[inline]
    fn node_mut(&mut self, n: NodeId) -> &mut Node {
        let node = &mut self.nodes[n.index()];
        debug_assert!(node.live, "dangling NodeId");
        node
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            NodeId(i)
        } else {
            // CAST: node indices are u32 by arena design (see alloc).
            let i = self.nodes.len() as u32;
            self.nodes.push(node);
            NodeId(i)
        }
    }

    fn release(&mut self, n: NodeId) {
        let node = &mut self.nodes[n.index()];
        node.live = false;
        node.rect = None;
        node.parent = NONE;
        node.next_sibling = NONE;
        node.kind = NodeKind::Leaf(Vec::new());
        self.free.push(n.0);
    }

    fn rect_of_children(&self, children: &[NodeId]) -> Rect {
        let mut it = children.iter();
        let first = *it.next().expect("empty child list");
        let mut rect = self.node(first).rect.clone().expect("child without rect");
        for &c in it {
            rect.enlarge(self.node(c).rect.as_ref().expect("child without rect"));
        }
        rect
    }

    fn recompute_rect(&mut self, n: NodeId) {
        let rect = match &self.node(n).kind {
            NodeKind::Leaf(slots) => {
                if slots.is_empty() {
                    None
                } else {
                    Some(bounding_rect_of_slots(&self.store, slots))
                }
            }
            NodeKind::Internal { count, .. } => {
                if *count == 0 {
                    None
                } else {
                    Some(self.rect_of_children(&self.child_vec(n)))
                }
            }
        };
        self.node_mut(n).rect = rect;
    }

    /// Recomputes rectangles from `n` up to the root.
    fn adjust_upward(&mut self, mut n: NodeId) {
        loop {
            self.recompute_rect(n);
            match self.parent(n) {
                Some(p) => n = p,
                None => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts `point` under the caller-assigned `id`.
    ///
    /// Duplicate ids are permitted (the tree is a multiset); the CBIR corpus
    /// assigns unique image ids.
    ///
    /// # Panics
    /// Panics if `point` has the wrong dimensionality.
    pub fn insert(&mut self, point: Vec<f32>, id: u64) {
        assert_eq!(
            point.len(),
            self.config.dims,
            "point dimensionality mismatch"
        );
        let slot = self.store.alloc(id, &point);
        let mut reinserted = vec![false; self.height()];
        self.insert_orphan(Orphan::Data(slot), 0, &mut reinserted);
        self.len += 1;
    }

    /// Inserts an orphan (data slot or whole subtree) at the given level.
    fn insert_orphan(&mut self, orphan: Orphan, level: u32, reinserted: &mut Vec<bool>) {
        match orphan {
            Orphan::Data(slot) => {
                debug_assert_eq!(level, 0);
                let rect = Rect::point(self.store.point(slot));
                let leaf = self.choose_subtree(&rect, 0);
                match &mut self.node_mut(leaf).kind {
                    NodeKind::Leaf(slots) => slots.push(slot),
                    NodeKind::Internal { .. } => {
                        unreachable!("choose_subtree(0) returned internal")
                    }
                }
                self.adjust_upward(leaf);
                if self.node(leaf).entry_count() > self.config.max_entries {
                    self.overflow(leaf, reinserted);
                }
            }
            Orphan::Subtree(child) => {
                let child_rect = self.node(child).rect.clone().expect("orphan without rect");
                // A subtree of level L becomes the child of a node at L+1.
                let target = self.choose_subtree(&child_rect, level + 1);
                self.push_child(target, child);
                self.adjust_upward(target);
                if self.node(target).entry_count() > self.config.max_entries {
                    self.overflow(target, reinserted);
                }
            }
        }
    }

    /// R\* `ChooseSubtree`: descends from the root to a node at
    /// `target_level`, minimizing overlap enlargement when the children are
    /// leaves and area enlargement otherwise.
    fn choose_subtree(&self, rect: &Rect, target_level: u32) -> NodeId {
        let mut n = self.root;
        while self.node(n).level > target_level {
            self.touch(n);
            let children = self.child_vec(n);
            debug_assert!(!children.is_empty(), "internal node without children");
            n = if self.node(n).level == 1 {
                self.pick_min_overlap_child(&children, rect)
            } else {
                self.pick_min_area_child(&children, rect)
            };
        }
        self.touch(n);
        n
    }

    fn pick_min_area_child(&self, children: &[NodeId], rect: &Rect) -> NodeId {
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for &c in children {
            let r = self.node(c).rect.as_ref().expect("child without rect");
            let key = (r.enlargement(rect), r.area());
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    /// Minimum overlap-enlargement child. For wide nodes, only the
    /// `CANDIDATES` children with the least area enlargement are examined —
    /// the R\* paper's own large-fan-out shortcut.
    fn pick_min_overlap_child(&self, children: &[NodeId], rect: &Rect) -> NodeId {
        const CANDIDATES: usize = 16;
        let mut by_area: Vec<(f64, NodeId)> = children
            .iter()
            .map(|&c| {
                let r = self.node(c).rect.as_ref().expect("child without rect");
                (r.enlargement(rect), c)
            })
            .collect();
        by_area.sort_by(|a, b| a.0.total_cmp(&b.0));
        by_area.truncate(CANDIDATES.max(1));

        let mut best = by_area[0].1;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &(area_enlargement, c) in &by_area {
            let r = self.node(c).rect.as_ref().expect("child without rect");
            let enlarged = r.union(rect);
            let mut overlap_increase = 0.0;
            for &s in children {
                if s == c {
                    continue;
                }
                let sr = self.node(s).rect.as_ref().expect("child without rect");
                overlap_increase += enlarged.overlap(sr) - r.overlap(sr);
            }
            let key = (overlap_increase, area_enlargement, r.area());
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    /// R\* `OverflowTreatment`: forced reinsertion once per level per
    /// insertion, splits thereafter.
    fn overflow(&mut self, n: NodeId, reinserted: &mut Vec<bool>) {
        let level = self.node(n).level as usize;
        if n != self.root && !reinserted.get(level).copied().unwrap_or(false) {
            if reinserted.len() <= level {
                reinserted.resize(level + 1, false);
            }
            reinserted[level] = true;
            self.forced_reinsert(n, reinserted);
        } else {
            self.split_and_propagate(n, reinserted);
        }
    }

    /// Evicts the `reinsert_fraction` entries farthest from the node center
    /// and re-inserts them from the top.
    fn forced_reinsert(&mut self, n: NodeId, reinserted: &mut Vec<bool>) {
        let center = self
            .node(n)
            .rect
            .as_ref()
            .expect("overflowing node without rect")
            .center();
        // CAST: max_entries is a small node capacity (~100), exact in f32.
        let count = ((self.config.max_entries as f32 * self.config.reinsert_fraction).ceil()
            as usize)
            .max(1);
        let level = self.node(n).level;

        let orphans: Vec<Orphan> = if self.is_leaf(n) {
            let mut slots = match &mut self.node_mut(n).kind {
                NodeKind::Leaf(s) => std::mem::take(s),
                NodeKind::Internal { .. } => unreachable!(),
            };
            slots.sort_by(|&a, &b| {
                dist2(self.store.point(a), &center).total_cmp(&dist2(self.store.point(b), &center))
            });
            let evicted = slots.split_off(slots.len() - count.min(slots.len()));
            match &mut self.node_mut(n).kind {
                NodeKind::Leaf(s) => *s = slots,
                NodeKind::Internal { .. } => unreachable!(),
            }
            evicted.into_iter().map(Orphan::Data).collect()
        } else {
            let children = self.child_vec(n);
            let mut scored: Vec<(f64, NodeId)> = children
                .iter()
                .map(|&c| {
                    let ccenter = self
                        .node(c)
                        .rect
                        .as_ref()
                        .expect("child without rect")
                        .center();
                    (dist2(&ccenter, &center), c)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let evicted: Vec<NodeId> = scored
                .split_off(scored.len() - count.min(scored.len()))
                .into_iter()
                .map(|(_, c)| c)
                .collect();
            let kept: Vec<NodeId> = children
                .into_iter()
                .filter(|c| !evicted.contains(c))
                .collect();
            self.link_children(n, &kept);
            evicted.into_iter().map(Orphan::Subtree).collect()
        };

        self.adjust_upward(n);
        for orphan in orphans {
            // `insert_orphan` takes the level of the orphan itself: data
            // entries are level 0, evicted children sit one level below the
            // node they came from.
            let orphan_level = match &orphan {
                Orphan::Data(_) => 0,
                Orphan::Subtree(_) => level - 1,
            };
            self.insert_orphan(orphan, orphan_level, reinserted);
        }
    }

    fn split_and_propagate(&mut self, n: NodeId, reinserted: &mut Vec<bool>) {
        let sibling = self.split(n);
        if n == self.root {
            let level = self.node(n).level + 1;
            let new_root = self.alloc(Node {
                rect: None,
                parent: NONE,
                next_sibling: NONE,
                level,
                kind: NodeKind::Internal {
                    first_child: NONE,
                    count: 0,
                },
                live: true,
            });
            self.link_children(new_root, &[n, sibling]);
            self.root = new_root;
            self.recompute_rect(new_root);
        } else {
            let parent = self.parent(n).expect("non-root without parent");
            self.push_child(parent, sibling);
            self.adjust_upward(parent);
            if self.node(parent).entry_count() > self.config.max_entries {
                self.overflow(parent, reinserted);
            }
        }
    }

    /// R\* topological split: choose the axis minimizing total margin over
    /// all distributions, then the distribution minimizing overlap (ties by
    /// area). Returns the new sibling holding the second group.
    fn split(&mut self, n: NodeId) -> NodeId {
        let m = self.config.min_entries;
        let rects: Vec<Rect> = match &self.node(n).kind {
            NodeKind::Leaf(slots) => slots
                .iter()
                .map(|&s| Rect::point(self.store.point(s)))
                .collect(),
            NodeKind::Internal { .. } => self
                .child_iter(n)
                .map(|c| self.node(c).rect.clone().expect("child without rect"))
                .collect(),
        };
        let total = rects.len();
        debug_assert!(total > self.config.max_entries);

        let dims = self.config.dims;
        let mut best_axis = 0usize;
        let mut best_axis_margin = f64::INFINITY;
        let mut best_axis_order: Vec<usize> = Vec::new();

        for axis in 0..dims {
            for sort_by_upper in [false, true] {
                let mut order: Vec<usize> = (0..total).collect();
                order.sort_by(|&a, &b| {
                    let (ka, kb) = if sort_by_upper {
                        (rects[a].max()[axis], rects[b].max()[axis])
                    } else {
                        (rects[a].min()[axis], rects[b].min()[axis])
                    };
                    ka.total_cmp(&kb)
                });
                let margin_sum = distributions(&order, &rects, m)
                    .iter()
                    .map(|d| d.margin_sum)
                    .sum::<f64>();
                if margin_sum < best_axis_margin {
                    best_axis_margin = margin_sum;
                    best_axis = axis;
                    best_axis_order = order;
                }
            }
        }
        let _ = best_axis; // retained for debugging clarity

        let split_at = {
            let dists = distributions(&best_axis_order, &rects, m);
            let mut best = &dists[0];
            for d in &dists {
                if (d.overlap, d.area_sum) < (best.overlap, best.area_sum) {
                    best = d;
                }
            }
            best.first_group_len
        };

        // Partition the actual entries according to the chosen order.
        let second_indices: std::collections::HashSet<usize> =
            best_axis_order[split_at..].iter().copied().collect();
        let level = self.node(n).level;

        let sibling = if self.is_leaf(n) {
            let slots = match &mut self.node_mut(n).kind {
                NodeKind::Leaf(s) => std::mem::take(s),
                NodeKind::Internal { .. } => unreachable!(),
            };
            let mut keep = Vec::with_capacity(split_at);
            let mut give = Vec::with_capacity(total - split_at);
            for (i, slot) in slots.into_iter().enumerate() {
                if second_indices.contains(&i) {
                    give.push(slot);
                } else {
                    keep.push(slot);
                }
            }
            match &mut self.node_mut(n).kind {
                NodeKind::Leaf(s) => *s = keep,
                NodeKind::Internal { .. } => unreachable!(),
            }
            self.alloc(Node {
                rect: None,
                parent: NONE,
                next_sibling: NONE,
                level,
                kind: NodeKind::Leaf(give),
                live: true,
            })
        } else {
            let children = self.child_vec(n);
            let mut keep = Vec::with_capacity(split_at);
            let mut give = Vec::with_capacity(total - split_at);
            for (i, child) in children.into_iter().enumerate() {
                if second_indices.contains(&i) {
                    give.push(child);
                } else {
                    keep.push(child);
                }
            }
            self.link_children(n, &keep);
            let sibling = self.alloc(Node {
                rect: None,
                parent: NONE,
                next_sibling: NONE,
                level,
                kind: NodeKind::Internal {
                    first_child: NONE,
                    count: 0,
                },
                live: true,
            });
            self.link_children(sibling, &give);
            sibling
        };
        self.recompute_rect(n);
        self.recompute_rect(sibling);
        sibling
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes the entry with the given point and id. Returns `false` if no
    /// such entry exists.
    pub fn remove(&mut self, point: &[f32], id: u64) -> bool {
        assert_eq!(
            point.len(),
            self.config.dims,
            "point dimensionality mismatch"
        );
        let Some(leaf) = self.find_leaf(self.root, point, id) else {
            return false;
        };
        let pos = match &self.node(leaf).kind {
            NodeKind::Leaf(slots) => slots
                .iter()
                .position(|&s| self.store.id(s) == id && self.store.point(s) == point)
                .expect("find_leaf returned a leaf without the entry"),
            NodeKind::Internal { .. } => unreachable!(),
        };
        let slot = match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf(slots) => slots.swap_remove(pos),
            NodeKind::Internal { .. } => unreachable!(),
        };
        self.store.release(slot);
        self.len -= 1;
        self.condense(leaf);
        true
    }

    fn find_leaf(&self, n: NodeId, point: &[f32], id: u64) -> Option<NodeId> {
        self.touch(n);
        match &self.node(n).kind {
            NodeKind::Leaf(slots) => slots
                .iter()
                .any(|&s| self.store.id(s) == id && self.store.point(s) == point)
                .then_some(n),
            NodeKind::Internal { .. } => self
                .child_iter(n)
                .filter(|&child| {
                    self.node(child)
                        .rect
                        .as_ref()
                        .is_some_and(|r| r.contains_point(point))
                })
                .find_map(|child| self.find_leaf(child, point, id)),
        }
    }

    /// `CondenseTree`: removes underfull ancestors, collecting orphans for
    /// reinsertion, then shrinks a single-child internal root.
    fn condense(&mut self, leaf: NodeId) {
        let m = self.config.min_entries;
        let mut orphans: Vec<(Orphan, u32)> = Vec::new();
        let mut cur = leaf;
        while cur != self.root {
            let parent = self.parent(cur).expect("non-root without parent");
            if self.node(cur).entry_count() < m {
                self.remove_child(parent, cur);
                let level = self.node(cur).level;
                if self.is_leaf(cur) {
                    let slots = match std::mem::replace(
                        &mut self.node_mut(cur).kind,
                        NodeKind::Leaf(Vec::new()),
                    ) {
                        NodeKind::Leaf(s) => s,
                        NodeKind::Internal { .. } => unreachable!(),
                    };
                    orphans.extend(slots.into_iter().map(|s| (Orphan::Data(s), 0)));
                } else {
                    let children = self.child_vec(cur);
                    self.node_mut(cur).kind = NodeKind::Leaf(Vec::new());
                    orphans.extend(
                        children
                            .into_iter()
                            .map(|c| (Orphan::Subtree(c), level - 1)),
                    );
                }
                self.release(cur);
            } else {
                self.recompute_rect(cur);
            }
            cur = parent;
        }
        self.recompute_rect(self.root);

        for (orphan, level) in orphans {
            let mut reinserted = vec![true; self.height()]; // no forced reinsert storms
            self.insert_orphan(orphan, level, &mut reinserted);
        }

        // Shrink the root while it is an internal node with one child.
        loop {
            let child = match &self.node(self.root).kind {
                NodeKind::Internal { first_child, count } if *count == 1 => NodeId(*first_child),
                _ => break,
            };
            let old = self.root;
            self.node_mut(child).parent = NONE;
            self.node_mut(child).next_sibling = NONE;
            self.root = child;
            self.release(old);
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The `k` nearest neighbors of `query` over the whole database,
    /// ascending by distance.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.knn_in(self.root, query, k)
    }

    /// The `k` nearest neighbors of `query` among the points stored under
    /// `scope` — the paper's *localized* k-NN computation (§3.3): each final
    /// subquery searches only its own subcluster.
    pub fn knn_in(&self, scope: NodeId, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.knn_in_counted(scope, query, k).0
    }

    /// [`Self::knn_in`] that additionally returns the number of node accesses
    /// this call performed. The count is accumulated call-locally (and folded
    /// into the global [`Self::accesses`] counter afterwards), so concurrent
    /// queries over a shared tree each see exactly their own cost — the
    /// per-subquery accounting the deterministic parallel executor relies on.
    pub fn knn_in_counted(&self, scope: NodeId, query: &[f32], k: usize) -> (Vec<Neighbor>, u64) {
        let b = self.knn_in_budgeted(scope, query, k, None);
        (b.neighbors, b.accesses)
    }

    /// [`Self::knn_in_counted`] under an optional *distance-computation
    /// budget* — the anytime variant behind cost-budgeted graceful
    /// degradation. The budget counts distance evaluations (one per leaf
    /// entry scored, one per child-rectangle MINDIST), a deterministic
    /// machine-independent cost measure: no wall clock is consulted, so a
    /// fixed `(scope, query, k, budget)` tuple always returns bit-identical
    /// results at any thread count.
    ///
    /// Once the budget is spent, no further node is expanded; data entries
    /// already scored keep draining from the frontier in distance order
    /// (best-so-far fill toward `k`), and every node left unexpanded is
    /// counted in [`BudgetedKnn::nodes_skipped`]. `None` means unlimited and
    /// behaves exactly like [`Self::knn_in_counted`].
    ///
    /// Leaf entries whose norm lower bound `(‖p‖ − ‖q‖)²` provably exceeds
    /// the k-th best distance seen skip the full distance evaluation. A
    /// pruned entry is charged to the budget exactly like an evaluated one
    /// (so budgets, counters, and rankings are identical to an unpruned
    /// scan); the skips are reported in [`BudgetedKnn::distances_pruned`].
    pub fn knn_in_budgeted(
        &self,
        scope: NodeId,
        query: &[f32],
        k: usize,
        budget: Option<u64>,
    ) -> BudgetedKnn {
        assert_eq!(
            query.len(),
            self.config.dims,
            "query dimensionality mismatch"
        );
        let mut touched = 0u64;
        let mut spent = 0u64;
        let mut pruned = 0u64;
        let mut nodes_skipped = 0u64;
        let mut exhausted = false;
        let mut out = Vec::with_capacity(k);
        if k == 0 || self.node(scope).rect.is_none() {
            return BudgetedKnn {
                neighbors: out,
                accesses: touched,
                distance_computations: spent,
                distances_pruned: pruned,
                nodes_skipped,
                partitions_dropped: 0,
                exhausted,
            };
        }
        #[derive(PartialEq)]
        struct HeapItem {
            dist2: f64,
            kind: HeapKind,
        }
        #[derive(PartialEq)]
        enum HeapKind {
            Node(NodeId),
            Data(u64),
        }
        impl Eq for HeapItem {}
        impl PartialOrd for HeapItem {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapItem {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance via reversed comparison.
                other.dist2.total_cmp(&self.dist2)
            }
        }
        /// Max-heap entry tracking the k smallest evaluated data distances.
        #[derive(PartialEq)]
        struct WorstOfBest(f64);
        impl Eq for WorstOfBest {}
        impl PartialOrd for WorstOfBest {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for WorstOfBest {
            fn cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let qnorm = norm_of(query);
        let mut best_k: BinaryHeap<WorstOfBest> = BinaryHeap::with_capacity(k + 1);
        let mut heap = BinaryHeap::new();
        let scope_rect = match self.node(scope).rect.as_ref() {
            Some(r) => r,
            None => unreachable!("rect presence checked above"),
        };
        spent += 1;
        heap.push(HeapItem {
            dist2: scope_rect.min_dist2(query),
            kind: HeapKind::Node(scope),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                HeapKind::Data(id) => {
                    out.push(Neighbor {
                        id,
                        // CAST: f64 search-heap distance narrowed back to the
                        // f32 feature domain the points live in.
                        distance: item.dist2.sqrt() as f32,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                HeapKind::Node(n) => {
                    if budget.is_some_and(|b| spent >= b) {
                        // Budget gone: leave this subtree unexplored but keep
                        // draining already-scored data entries.
                        exhausted = true;
                        nodes_skipped += 1;
                        continue;
                    }
                    touched += 1;
                    match &self.node(n).kind {
                        NodeKind::Leaf(slots) => {
                            // Charged as if every entry were evaluated — the
                            // budget currency is layout- and pruning-free.
                            spent += slots.len() as u64;
                            for &s in slots {
                                if best_k.len() == k {
                                    let lb = self.store.norm(s) - qnorm;
                                    let prunable =
                                        best_k.peek().is_some_and(|w| lb * lb > w.0 * PRUNE_SLACK);
                                    if prunable {
                                        pruned += 1;
                                        continue;
                                    }
                                }
                                let d2 = dist2(self.store.point(s), query);
                                heap.push(HeapItem {
                                    dist2: d2,
                                    kind: HeapKind::Data(self.store.id(s)),
                                });
                                best_k.push(WorstOfBest(d2));
                                if best_k.len() > k {
                                    best_k.pop();
                                }
                            }
                        }
                        NodeKind::Internal { .. } => {
                            for child in self.child_iter(n) {
                                if let Some(r) = self.node(child).rect.as_ref() {
                                    spent += 1;
                                    heap.push(HeapItem {
                                        dist2: r.min_dist2(query),
                                        kind: HeapKind::Node(child),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        self.accesses.fetch_add(touched, AtomicOrdering::Relaxed);
        BudgetedKnn {
            neighbors: out,
            accesses: touched,
            distance_computations: spent,
            distances_pruned: pruned,
            nodes_skipped,
            partitions_dropped: 0,
            exhausted,
        }
    }

    /// The single nearest neighbor of `query`, if the tree is non-empty.
    pub fn nearest(&self, query: &[f32]) -> Option<Neighbor> {
        self.knn(query, 1).into_iter().next()
    }

    /// Per-level occupancy statistics: `(level, node count, mean fill)`.
    /// Fill is entries per node relative to `max_entries`; useful for
    /// inspecting construction quality (bulk load vs R\* insertion).
    pub fn occupancy(&self) -> Vec<(u32, usize, f64)> {
        let mut per_level: std::collections::BTreeMap<u32, (usize, usize)> =
            std::collections::BTreeMap::new();
        for n in self.node_ids() {
            let e = per_level.entry(self.level(n)).or_insert((0, 0));
            e.0 += 1;
            e.1 += self.node(n).entry_count();
        }
        per_level
            .into_iter()
            .map(|(level, (nodes, entries))| {
                (
                    level,
                    nodes,
                    entries as f64 / (nodes * self.config.max_entries) as f64,
                )
            })
            .collect()
    }

    /// Ids of all points inside `range` (boundary inclusive).
    pub fn range(&self, range: &Rect) -> Vec<u64> {
        assert_eq!(
            range.dim(),
            self.config.dims,
            "range dimensionality mismatch"
        );
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let Some(rect) = self.node(n).rect.as_ref() else {
                continue;
            };
            if !rect.intersects(range) {
                continue;
            }
            self.touch(n);
            match &self.node(n).kind {
                NodeKind::Leaf(slots) => {
                    out.extend(
                        slots
                            .iter()
                            .filter(|&&s| range.contains_point(self.store.point(s)))
                            .map(|&s| self.store.id(s)),
                    );
                }
                NodeKind::Internal { .. } => stack.extend(self.child_iter(n)),
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Invariants (used heavily by tests)
    // ------------------------------------------------------------------

    /// Checks every structural invariant, panicking with a description of the
    /// first violation. Intended for tests and debug assertions.
    pub fn validate(&self) {
        if let Err(msg) = self.check_invariants() {
            panic!("{msg}");
        }
    }

    /// Non-panicking invariant check: returns a description of the first
    /// violation. Used by deserialization to reject corrupt files.
    ///
    /// Beyond the classic R\*-tree invariants this validates the arena
    /// layout contract (DESIGN.md §11): every child/next-sibling link
    /// resolves to a live in-bounds node, each child chain has exactly the
    /// recorded length and terminates, traversal from the root reaches every
    /// node at most once, the SoA feature block length equals
    /// `dims × slot_count`, every live feature slot is referenced by exactly
    /// one leaf, and the free lists are consistent with liveness.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail = |msg: String| Err(msg);

        // --- Feature store layout ---
        let slot_count = self.store.slot_count();
        if self.store.data.len() != slot_count * self.config.dims {
            return fail(format!(
                "feature block length {} does not equal dims {} x slot count {slot_count}",
                self.store.data.len(),
                self.config.dims
            ));
        }
        if self.store.norms.len() != slot_count || self.store.live.len() != slot_count {
            return fail("feature store parallel arrays disagree on slot count".to_string());
        }
        let mut freed = std::collections::HashSet::new();
        for &f in &self.store.free {
            if f as usize >= slot_count {
                return fail(format!("freed feature slot {f} out of bounds"));
            }
            if self.store.live[f as usize] {
                return fail(format!("freed feature slot {f} still marked live"));
            }
            if !freed.insert(f) {
                return fail(format!("feature slot {f} freed twice"));
            }
        }
        let live_slots = self.store.live.iter().filter(|&&l| l).count();
        if live_slots + freed.len() != slot_count {
            return fail("feature slot liveness disagrees with the free list".to_string());
        }

        // --- Tree structure ---
        let root = self.root;
        let root_node = self
            .nodes
            .get(root.index())
            .filter(|n| n.live)
            .ok_or_else(|| "root is not a live node".to_string())?;
        if root_node.parent != NONE {
            return fail("root has a parent".to_string());
        }
        let mut seen_points = 0usize;
        let mut seen_slots = std::collections::HashSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !visited.insert(n) {
                return fail(format!(
                    "node {n:?} reachable twice (cycle or shared child)"
                ));
            }
            let node = self
                .nodes
                .get(n.index())
                .filter(|x| x.live)
                .ok_or_else(|| format!("dangling child reference {n:?}"))?;
            if n != root && node.entry_count() < self.config.min_entries {
                return fail(format!("node {n:?} underfull: {}", node.entry_count()));
            }
            if node.entry_count() > self.config.max_entries {
                return fail(format!("node {n:?} overfull: {}", node.entry_count()));
            }
            match &node.kind {
                NodeKind::Leaf(slots) => {
                    if node.level != 0 {
                        return fail(format!("leaf at level {}", node.level));
                    }
                    seen_points += slots.len();
                    for &s in slots {
                        if s as usize >= slot_count {
                            return fail(format!("leaf slot {s} out of bounds"));
                        }
                        if !self.store.live[s as usize] {
                            return fail(format!("leaf references freed feature slot {s}"));
                        }
                        if !seen_slots.insert(s) {
                            return fail(format!("feature slot {s} referenced by two leaves"));
                        }
                        if self.store.norms[s as usize] != norm_of(self.store.point(s)) {
                            return fail(format!("stale cached norm for feature slot {s}"));
                        }
                    }
                    if let Some(rect) = &node.rect {
                        for &s in slots {
                            if !rect.contains_point(self.store.point(s)) {
                                return fail("leaf rect does not contain its point".to_string());
                            }
                        }
                    } else if !slots.is_empty() {
                        return fail("leaf with points but no rect".to_string());
                    }
                }
                NodeKind::Internal { first_child, count } => {
                    if *count == 0 {
                        return fail("internal node without children".to_string());
                    }
                    let rect = node
                        .rect
                        .as_ref()
                        .ok_or_else(|| "internal node without rect".to_string())?;
                    // Walk the sibling chain with an explicit bound so a
                    // corrupt cyclic chain fails instead of looping forever.
                    let mut chain = Vec::with_capacity(*count as usize);
                    let mut cur = *first_child;
                    for _ in 0..*count {
                        if cur == NONE {
                            return fail(format!(
                                "child chain of {n:?} shorter than count {count}"
                            ));
                        }
                        let child = NodeId(cur);
                        let cn = self
                            .nodes
                            .get(child.index())
                            .filter(|x| x.live)
                            .ok_or_else(|| format!("dangling child reference {child:?}"))?;
                        chain.push(child);
                        cur = cn.next_sibling;
                    }
                    if cur != NONE {
                        return fail(format!("child chain of {n:?} longer than count {count}"));
                    }
                    for &child in &chain {
                        let cn = &self.nodes[child.index()];
                        if cn.parent != n.0 {
                            return fail("bad parent pointer".to_string());
                        }
                        if cn.level + 1 != node.level {
                            return fail("level mismatch".to_string());
                        }
                        let crect = cn
                            .rect
                            .as_ref()
                            .ok_or_else(|| "child without rect".to_string())?;
                        if crect.dim() != self.config.dims || rect.dim() != self.config.dims {
                            return fail("rect dimensionality mismatch".to_string());
                        }
                        if !rect.contains_rect(crect) {
                            return fail("parent rect does not contain child rect".to_string());
                        }
                        stack.push(child);
                    }
                }
            }
        }
        if seen_points != self.len {
            return fail(format!(
                "len {} does not match stored points {seen_points}",
                self.len
            ));
        }
        if seen_slots.len() != live_slots {
            return fail(format!(
                "live feature slots {live_slots} vs leaf-referenced slots {}",
                seen_slots.len()
            ));
        }
        Ok(())
    }
}

/// One candidate split distribution.
struct Distribution {
    first_group_len: usize,
    margin_sum: f64,
    overlap: f64,
    area_sum: f64,
}

/// All legal (first, second) group splits of `order`, each group at least `m`.
fn distributions(order: &[usize], rects: &[Rect], m: usize) -> Vec<Distribution> {
    let total = order.len();
    let mut out = Vec::with_capacity(total.saturating_sub(2 * m) + 1);
    for first_len in m..=(total - m) {
        let first = bounding_rect(order[..first_len].iter().map(|&i| &rects[i]));
        let second = bounding_rect(order[first_len..].iter().map(|&i| &rects[i]));
        out.push(Distribution {
            first_group_len: first_len,
            margin_sum: first.margin() + second.margin(),
            overlap: first.overlap(&second),
            area_sum: first.area() + second.area(),
        });
    }
    out
}

fn bounding_rect<'a>(mut rects: impl Iterator<Item = &'a Rect>) -> Rect {
    let mut out = rects.next().expect("empty rect set").clone();
    for r in rects {
        out.enlarge(r);
    }
    out
}

fn bounding_rect_of_slots(store: &FeatureStore, slots: &[u32]) -> Rect {
    let mut rect = Rect::point(store.point(slots[0]));
    for &s in &slots[1..] {
        rect.enlarge(&Rect::point(store.point(s)));
    }
    rect
}

pub(crate) fn dist2(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum()
}

/// Recursively partitions `items` into chunks of at most `max` elements by
/// median-splitting along the widest dimension — the bulk-load tiler.
/// `coord(item, d)` is the d-th coordinate of an item's key point; the
/// ordering decisions are identical to the legacy slice-keyed tiler.
fn partition_recursive<T: Clone>(
    items: &mut [T],
    max: usize,
    dims: usize,
    coord: impl Fn(&T, usize) -> f32 + Copy,
) -> Vec<Vec<T>> {
    if items.len() <= max {
        return vec![items.to_vec()];
    }
    let mut widest = 0usize;
    let mut widest_span = f32::NEG_INFINITY;
    for d in 0..dims {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for item in items.iter() {
            let v = coord(item, d);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi - lo > widest_span {
            widest_span = hi - lo;
            widest = d;
        }
    }
    let mid = items.len() / 2;
    items.sort_by(|a, b| coord(a, widest).total_cmp(&coord(b, widest)));
    let (left, right) = items.split_at_mut(mid);
    let mut out = partition_recursive(left, max, dims, coord);
    out.extend(partition_recursive(right, max, dims, coord));
    out
}

// ----------------------------------------------------------------------
// Persistence (see `crate::persist` for the public API)
// ----------------------------------------------------------------------

/// Arena format: nodes + the contiguous SoA feature block.
const PERSIST_MAGIC: &[u8; 4] = b"QDT2";
/// The pre-arena node-owned format; rejected with a distinct error.
const LEGACY_PERSIST_MAGIC: &[u8; 4] = b"QDT1";

/// Serializes the full arena into `out` (little-endian): config header, the
/// feature store (ids, one contiguous f32 block of `slot_count × dims`
/// values, free list; norms are recomputed on load), then the node arena
/// with explicit child lists (sibling chains are rebuilt on load).
pub(crate) fn write_tree(tree: &RStarTree, out: &mut Vec<u8>) {
    out.extend_from_slice(PERSIST_MAGIC);
    let w64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    w64(out, tree.config.dims as u64);
    w64(out, tree.config.min_entries as u64);
    w64(out, tree.config.max_entries as u64);
    out.extend_from_slice(&tree.config.reinsert_fraction.to_le_bytes());
    w64(out, tree.len as u64);
    out.extend_from_slice(&tree.root.0.to_le_bytes());

    // Feature store.
    let slot_count = tree.store.slot_count();
    w64(out, slot_count as u64);
    w64(out, tree.store.data.len() as u64);
    for id in &tree.store.ids {
        w64(out, *id);
    }
    for v in &tree.store.data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    w64(out, tree.store.free.len() as u64);
    for f in &tree.store.free {
        out.extend_from_slice(&f.to_le_bytes());
    }

    // Node arena.
    w64(out, tree.nodes.len() as u64);
    for (i, node) in tree.nodes.iter().enumerate() {
        // CAST: bool is 0 or 1, exact in u8 — the on-disk liveness flag.
        out.push(node.live as u8);
        if !node.live {
            continue;
        }
        out.extend_from_slice(&node.level.to_le_bytes());
        out.extend_from_slice(&node.parent.to_le_bytes());
        match node.rect.as_ref() {
            Some(rect) => {
                out.push(1);
                crate::persist::write_rect(out, rect);
            }
            None => out.push(0),
        }
        match &node.kind {
            NodeKind::Leaf(slots) => {
                out.push(0);
                w64(out, slots.len() as u64);
                for s in slots {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            NodeKind::Internal { .. } => {
                out.push(1);
                // CAST: i indexes the node arena, u32 by design (see alloc).
                let children = tree.child_vec(NodeId(i as u32));
                w64(out, children.len() as u64);
                for c in children {
                    out.extend_from_slice(&c.0.to_le_bytes());
                }
            }
        }
    }
}

/// Deserializes a tree written by [`write_tree`], validating structure.
pub(crate) fn read_tree(data: &[u8]) -> std::io::Result<RStarTree> {
    use std::io::{Error, ErrorKind};
    let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());
    struct R<'a> {
        data: &'a [u8],
        pos: usize,
    }
    impl<'a> R<'a> {
        fn bytes(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.data.len())
                .ok_or_else(|| Error::new(ErrorKind::UnexpectedEof, "truncated tree file"))?;
            let s = &self.data[self.pos..end];
            self.pos = end;
            Ok(s)
        }
        fn u64(&mut self) -> std::io::Result<u64> {
            let mut b = [0u8; 8];
            b.copy_from_slice(self.bytes(8)?);
            Ok(u64::from_le_bytes(b))
        }
        fn u32(&mut self) -> std::io::Result<u32> {
            let mut b = [0u8; 4];
            b.copy_from_slice(self.bytes(4)?);
            Ok(u32::from_le_bytes(b))
        }
        fn f32(&mut self) -> std::io::Result<f32> {
            let mut b = [0u8; 4];
            b.copy_from_slice(self.bytes(4)?);
            Ok(f32::from_le_bytes(b))
        }
        fn f32s(&mut self, n: usize) -> std::io::Result<Vec<f32>> {
            (0..n).map(|_| self.f32()).collect()
        }
    }

    let mut r = R { data, pos: 0 };
    let magic = r.bytes(4)?;
    if magic == LEGACY_PERSIST_MAGIC {
        return Err(bad(
            "legacy QDT1 (pre-arena) index file — rebuild and re-save the index",
        ));
    }
    if magic != PERSIST_MAGIC {
        return Err(bad("not an R*-tree file"));
    }
    let dims = r.u64()? as usize;
    let min_entries = r.u64()? as usize;
    let max_entries = r.u64()? as usize;
    let reinsert_fraction = r.f32()?;
    // Sanity bounds guard every later `with_capacity` against corrupted
    // count fields — a flipped byte must produce an error, not an OOM.
    if dims == 0
        || dims > 1 << 16
        // bound before multiplying (overflow)
        || !(2..=1 << 20).contains(&min_entries)
        || max_entries > 1 << 20
        || min_entries * 2 > max_entries
        || !reinsert_fraction.is_finite()
    {
        return Err(bad("invalid tree configuration"));
    }
    let len = r.u64()? as usize;
    let root = NodeId(r.u32()?);
    if len > data.len() / 8 {
        return Err(bad("corrupt size fields"));
    }

    // Feature store: every slot costs at least 8 id bytes, so `slot_count`
    // is bounded by the file size before any allocation happens.
    let slot_count = r.u64()? as usize;
    let block_len = r.u64()? as usize;
    if slot_count > data.len() / 8 {
        return Err(bad("corrupt feature slot count"));
    }
    match slot_count.checked_mul(dims) {
        Some(expect) if expect == block_len => {}
        _ => return Err(bad("feature block length does not equal dims x slot count")),
    }
    let mut ids = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        ids.push(r.u64()?);
    }
    let block = r.f32s(block_len)?;
    let free_count = r.u64()? as usize;
    if free_count > slot_count {
        return Err(bad("corrupt feature free list"));
    }
    let mut live = vec![true; slot_count];
    let mut store_free = Vec::with_capacity(free_count);
    for _ in 0..free_count {
        let f = r.u32()?;
        if f as usize >= slot_count || !live[f as usize] {
            return Err(bad("corrupt feature free list"));
        }
        live[f as usize] = false;
        store_free.push(f);
    }
    let norms = (0..slot_count)
        .map(|s| norm_of(&block[s * dims..(s + 1) * dims]))
        .collect();
    let store = FeatureStore {
        dims,
        ids,
        data: block,
        norms,
        live,
        free: store_free,
    };

    // Node arena.
    let arena = r.u64()? as usize;
    if root.index() >= arena {
        return Err(bad("root out of range"));
    }
    // Every serialized node costs at least one byte.
    if arena > data.len() {
        return Err(bad("corrupt size fields"));
    }
    let mut nodes = Vec::with_capacity(arena);
    let mut free = Vec::new();
    let mut children_of: Vec<Vec<NodeId>> = Vec::with_capacity(arena);
    for i in 0..arena {
        let live_node = r.bytes(1)?[0] != 0;
        if !live_node {
            // CAST: i < arena ≤ data.len() (checked above); overflowing u32
            // would require a >4 GiB in-memory index image.
            free.push(i as u32);
            nodes.push(Node {
                rect: None,
                parent: NONE,
                next_sibling: NONE,
                level: 0,
                kind: NodeKind::Leaf(Vec::new()),
                live: false,
            });
            children_of.push(Vec::new());
            continue;
        }
        let level = r.u32()?;
        let parent = match r.u32()? {
            NONE => NONE,
            p if (p as usize) < arena => p,
            _ => return Err(bad("parent out of range")),
        };
        let rect = if r.bytes(1)?[0] != 0 {
            let min = r.f32s(dims)?;
            let max = r.f32s(dims)?;
            for (lo, hi) in min.iter().zip(&max) {
                if lo > hi || !lo.is_finite() || !hi.is_finite() {
                    return Err(bad("malformed rectangle"));
                }
            }
            Some(Rect::new(min, max))
        } else {
            None
        };
        let (kind, children) = match r.bytes(1)?[0] {
            0 => {
                let count = r.u64()? as usize;
                if count > max_entries {
                    return Err(bad("leaf overfull"));
                }
                let mut slots = Vec::with_capacity(count);
                for _ in 0..count {
                    let s = r.u32()?;
                    if s as usize >= slot_count || !store.live[s as usize] {
                        return Err(bad("leaf references a bad feature slot"));
                    }
                    slots.push(s);
                }
                (NodeKind::Leaf(slots), Vec::new())
            }
            1 => {
                let count = r.u64()? as usize;
                if count > max_entries {
                    return Err(bad("internal node overfull"));
                }
                let mut children = Vec::with_capacity(count);
                for _ in 0..count {
                    let c = r.u32()?;
                    if c as usize >= arena {
                        return Err(bad("child out of range"));
                    }
                    children.push(NodeId(c));
                }
                (
                    NodeKind::Internal {
                        first_child: NONE,
                        count: 0,
                    },
                    children,
                )
            }
            _ => return Err(bad("unknown node kind")),
        };
        nodes.push(Node {
            rect,
            parent,
            next_sibling: NONE,
            level,
            kind,
            live: true,
        });
        children_of.push(children);
    }
    if r.pos != data.len() {
        return Err(bad("trailing bytes in tree file"));
    }

    let mut tree = RStarTree {
        config: TreeConfig {
            dims,
            min_entries,
            max_entries,
            reinsert_fraction,
        },
        nodes,
        free,
        root,
        len,
        store,
        accesses: AtomicU64::new(0),
    };
    // Rebuild sibling chains from the explicit child lists. Parents come
    // from the file and are cross-validated against the chains below.
    for (i, children) in children_of.into_iter().enumerate() {
        if !children.is_empty() {
            // CAST: i < arena ≤ data.len() (checked above); overflowing u32
            // would require a >4 GiB in-memory index image.
            tree.chain_children(NodeId(i as u32), &children);
        }
    }
    // A structurally broken file must not produce a tree that misbehaves
    // later; the non-panicking checker rejects it cleanly.
    if let Err(msg) = tree.check_invariants() {
        return Err(bad(&format!(
            "tree file fails structural validation: {msg}"
        )));
    }
    Ok(tree)
}
#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|id| {
                let p: Vec<f32> = (0..dims).map(|_| rng.random::<f32>() * 10.0).collect();
                (id, p)
            })
            .collect()
    }

    fn brute_knn(items: &[(u64, Vec<f32>)], q: &[f32], k: usize) -> Vec<u64> {
        let mut scored: Vec<(f64, u64)> = items.iter().map(|(id, p)| (dist2(p, q), *id)).collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn empty_tree_behaves() {
        let tree = RStarTree::new(TreeConfig::small(3));
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree.knn(&[0.0, 0.0, 0.0], 5).is_empty());
        tree.validate();
    }

    #[test]
    fn insert_and_query_single_point() {
        let mut tree = RStarTree::new(TreeConfig::small(2));
        tree.insert(vec![1.0, 2.0], 42);
        assert_eq!(tree.len(), 1);
        let nn = tree.knn(&[1.0, 2.0], 1);
        assert_eq!(nn[0].id, 42);
        assert_eq!(nn[0].distance, 0.0);
        tree.validate();
    }

    #[test]
    fn inserts_grow_the_tree_and_keep_invariants() {
        let mut tree = RStarTree::new(TreeConfig::small(3));
        for (id, p) in random_points(200, 3, 1) {
            tree.insert(p, id);
            if id % 37 == 0 {
                tree.validate();
            }
        }
        assert_eq!(tree.len(), 200);
        assert!(tree.height() > 1);
        tree.validate();
    }

    #[test]
    fn knn_matches_brute_force() {
        let items = random_points(300, 4, 7);
        let mut tree = RStarTree::new(TreeConfig::small(4));
        for (id, p) in items.clone() {
            tree.insert(p, id);
        }
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..20 {
            let q: Vec<f32> = (0..4).map(|_| rng.random::<f32>() * 10.0).collect();
            let got: Vec<u64> = tree.knn(&q, 10).into_iter().map(|n| n.id).collect();
            let want = brute_knn(&items, &q, 10);
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn knn_distances_ascend() {
        let items = random_points(150, 5, 9);
        let mut tree = RStarTree::new(TreeConfig::small(5));
        for (id, p) in items {
            tree.insert(p, id);
        }
        let result = tree.knn(&[5.0; 5], 20);
        assert_eq!(result.len(), 20);
        for w in result.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn knn_with_k_larger_than_len_returns_everything() {
        let mut tree = RStarTree::new(TreeConfig::small(2));
        for (id, p) in random_points(8, 2, 3) {
            tree.insert(p, id);
        }
        assert_eq!(tree.knn(&[0.0, 0.0], 100).len(), 8);
    }

    #[test]
    fn knn_in_subtree_is_local() {
        let items = random_points(400, 3, 21);
        let mut tree = RStarTree::new(TreeConfig::small(3));
        for (id, p) in items.clone() {
            tree.insert(p, id);
        }
        // Search restricted to the first child only returns items stored there.
        let child = tree.children(tree.root())[0];
        let local_ids: std::collections::HashSet<u64> = tree
            .subtree_items(child)
            .iter()
            .map(|(id, _)| *id)
            .collect();
        let result = tree.knn_in(child, &[5.0, 5.0, 5.0], 25);
        assert!(!result.is_empty());
        for n in &result {
            assert!(local_ids.contains(&n.id), "{} escaped the subtree", n.id);
        }
        // And matches brute force over the subtree's items.
        let local_items: Vec<(u64, Vec<f32>)> = items
            .iter()
            .filter(|(id, _)| local_ids.contains(id))
            .cloned()
            .collect();
        let want = brute_knn(&local_items, &[5.0, 5.0, 5.0], 25);
        let got: Vec<u64> = result.into_iter().map(|n| n.id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_query_matches_filter() {
        let items = random_points(250, 2, 13);
        let mut tree = RStarTree::new(TreeConfig::small(2));
        for (id, p) in items.clone() {
            tree.insert(p, id);
        }
        let range = Rect::new(vec![2.0, 3.0], vec![6.0, 8.0]);
        let mut got = tree.range(&range);
        got.sort_unstable();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|(_, p)| range.contains_point(p))
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty(), "test range should be non-trivial");
    }

    #[test]
    fn remove_deletes_exactly_the_entry() {
        let items = random_points(120, 3, 17);
        let mut tree = RStarTree::new(TreeConfig::small(3));
        for (id, p) in items.clone() {
            tree.insert(p, id);
        }
        // Remove half the entries.
        for (id, p) in items.iter().take(60) {
            assert!(tree.remove(p, *id), "missing {id}");
            tree.validate();
        }
        assert_eq!(tree.len(), 60);
        // Removed entries are gone; the rest still findable.
        for (id, p) in &items[..60] {
            assert!(!tree.remove(p, *id));
        }
        for (id, p) in &items[60..] {
            let nn = tree.knn(p, 1);
            assert_eq!(nn[0].id, *id);
        }
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let items = random_points(80, 2, 23);
        let mut tree = RStarTree::new(TreeConfig::small(2));
        for (id, p) in items.clone() {
            tree.insert(p, id);
        }
        for (id, p) in &items {
            assert!(tree.remove(p, *id));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate();
        // Tree remains usable.
        tree.insert(vec![1.0, 1.0], 999);
        assert_eq!(tree.knn(&[1.0, 1.0], 1)[0].id, 999);
    }

    #[test]
    fn remove_nonexistent_returns_false() {
        let mut tree = RStarTree::new(TreeConfig::small(2));
        tree.insert(vec![1.0, 1.0], 1);
        assert!(!tree.remove(&[2.0, 2.0], 1)); // wrong point
        assert!(!tree.remove(&[1.0, 1.0], 2)); // wrong id
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn bulk_load_matches_insert_semantics() {
        let items = random_points(500, 4, 31);
        let tree = RStarTree::bulk_load(TreeConfig::small(4), items.clone());
        assert_eq!(tree.len(), 500);
        tree.validate();
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..10 {
            let q: Vec<f32> = (0..4).map(|_| rng.random::<f32>() * 10.0).collect();
            let got: Vec<u64> = tree.knn(&q, 7).into_iter().map(|n| n.id).collect();
            assert_eq!(got, brute_knn(&items, &q, 7), "query {q:?}");
        }
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let tree = RStarTree::bulk_load(TreeConfig::small(2), vec![]);
        assert!(tree.is_empty());
        let tree = RStarTree::bulk_load(TreeConfig::small(2), vec![(5, vec![1.0, 1.0])]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.knn(&[0.0, 0.0], 1)[0].id, 5);
        tree.validate();
    }

    #[test]
    fn paper_config_builds_shallow_tree() {
        // With node capacity 70–100 the paper's 15k-image database yields a
        // 3-level structure; 3,000 points must stay within 3 levels too.
        let items = random_points(3000, 5, 41);
        let tree = RStarTree::bulk_load(TreeConfig::paper(5), items);
        tree.validate();
        assert!(tree.height() <= 3, "height = {}", tree.height());
    }

    #[test]
    fn access_counter_tracks_work() {
        let items = random_points(400, 3, 43);
        let tree = RStarTree::bulk_load(TreeConfig::small(3), items);
        tree.reset_accesses();
        assert_eq!(tree.accesses(), 0);
        tree.knn(&[5.0, 5.0, 5.0], 5);
        let global = tree.accesses();
        assert!(global > 0);
        // A subtree-scoped query touches fewer nodes.
        tree.reset_accesses();
        let child = tree.children(tree.root())[0];
        tree.knn_in(child, &[5.0, 5.0, 5.0], 5);
        assert!(tree.accesses() < global);
    }

    #[test]
    fn structural_accessors_are_consistent() {
        let items = random_points(300, 3, 47);
        let tree = RStarTree::bulk_load(TreeConfig::small(3), items);
        let root = tree.root();
        assert!(tree.parent(root).is_none());
        assert_eq!(tree.level(root) as usize + 1, tree.height());
        let mut total = 0;
        for n in tree.node_ids() {
            if tree.is_leaf(n) {
                total += tree.leaf_entries(n).count();
            } else {
                for c in tree.children(n) {
                    assert_eq!(tree.parent(c), Some(n));
                }
            }
        }
        assert_eq!(total, tree.len());
        assert_eq!(tree.subtree_len(root), tree.len());
        assert_eq!(tree.subtree_items(root).len(), tree.len());
    }

    #[test]
    fn duplicate_points_are_allowed() {
        let mut tree = RStarTree::new(TreeConfig::small(2));
        for id in 0..20 {
            tree.insert(vec![1.0, 1.0], id);
        }
        assert_eq!(tree.len(), 20);
        tree.validate();
        assert_eq!(tree.knn(&[1.0, 1.0], 20).len(), 20);
    }

    #[test]
    fn high_dimensional_points_work() {
        // The real workload: 37 dimensions.
        let items = random_points(300, 37, 53);
        let mut tree = RStarTree::new(TreeConfig {
            dims: 37,
            min_entries: 8,
            max_entries: 20,
            reinsert_fraction: 0.3,
        });
        for (id, p) in items.clone() {
            tree.insert(p, id);
        }
        tree.validate();
        let q = &items[17].1;
        let got: Vec<u64> = tree.knn(q, 5).into_iter().map(|n| n.id).collect();
        assert_eq!(got, brute_knn(&items, q, 5));
    }

    #[test]
    fn nearest_matches_knn_head() {
        let items = random_points(100, 3, 61);
        let tree = RStarTree::bulk_load(TreeConfig::small(3), items);
        let q = [5.0, 5.0, 5.0];
        assert_eq!(tree.nearest(&q), tree.knn(&q, 1).into_iter().next());
        let empty = RStarTree::new(TreeConfig::small(3));
        assert_eq!(empty.nearest(&q), None);
    }

    #[test]
    fn occupancy_reports_every_level_with_sane_fill() {
        let items = random_points(500, 3, 67);
        let tree = RStarTree::bulk_load(TreeConfig::small(3), items);
        let occ = tree.occupancy();
        assert_eq!(occ.len(), tree.height());
        let total_nodes: usize = occ.iter().map(|&(_, n, _)| n).sum();
        assert_eq!(total_nodes, tree.node_count());
        for &(level, nodes, fill) in &occ {
            assert!(nodes > 0, "level {level}");
            assert!(fill > 0.0 && fill <= 1.0, "level {level} fill {fill}");
        }
        // Leaves (level 0) hold all the data.
        assert_eq!(occ[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dimension_insert_panics() {
        let mut tree = RStarTree::new(TreeConfig::small(3));
        tree.insert(vec![1.0, 2.0], 0);
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn invalid_config_panics() {
        RStarTree::new(TreeConfig {
            dims: 2,
            min_entries: 4,
            max_entries: 5,
            reinsert_fraction: 0.3,
        });
    }

    #[test]
    fn contains_node_accepts_live_and_rejects_foreign_handles() {
        let items: Vec<(u64, Vec<f32>)> = (0..50u64).map(|i| (i, vec![i as f32, 0.0])).collect();
        let tree = RStarTree::bulk_load(TreeConfig::small(2), items);
        for n in tree.node_ids() {
            assert!(tree.contains_node(n));
        }
        let single = RStarTree::bulk_load(TreeConfig::small(2), vec![(0, vec![0.0, 0.0])]);
        // A handle minted by a much larger tree dangles in the single-node one.
        let big = *tree.node_ids().last().unwrap();
        if big.index() >= single.node_count() {
            assert!(!single.contains_node(big));
        }
    }

    #[test]
    fn unlimited_budget_matches_counted_knn() {
        let items: Vec<(u64, Vec<f32>)> = (0..200u64)
            .map(|i| (i, vec![(i % 17) as f32, (i / 17) as f32]))
            .collect();
        let tree = RStarTree::bulk_load(TreeConfig::small(2), items);
        let q = [3.3f32, 4.1];
        let (plain, accesses) = tree.knn_in_counted(tree.root(), &q, 10);
        let b = tree.knn_in_budgeted(tree.root(), &q, 10, None);
        assert_eq!(b.neighbors, plain);
        assert_eq!(b.accesses, accesses);
        assert!(!b.exhausted);
        assert_eq!(b.nodes_skipped, 0);
        assert!(b.distance_computations > 0);
        // A budget at least as large as the spend also completes untouched.
        let c = tree.knn_in_budgeted(tree.root(), &q, 10, Some(b.distance_computations + 1));
        assert_eq!(c.neighbors, plain);
        assert!(!c.exhausted);
    }

    #[test]
    fn exhausted_budget_returns_valid_best_so_far() {
        let items: Vec<(u64, Vec<f32>)> = (0..300u64)
            .map(|i| (i, vec![(i % 20) as f32, (i / 20) as f32]))
            .collect();
        let tree = RStarTree::bulk_load(TreeConfig::small(2), items);
        let q = [9.5f32, 7.5];
        let full = tree.knn_in(tree.root(), &q, 25);
        for budget in [0u64, 1, 5, 20, 60, 150] {
            let b = tree.knn_in_budgeted(tree.root(), &q, 25, Some(budget));
            assert!(
                b.distance_computations <= budget.max(1) + 64,
                "spend near budget"
            );
            // Results are valid: unique ids, ascending distances.
            let mut ids: Vec<u64> = b.neighbors.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                b.neighbors.len(),
                "duplicate ids at budget {budget}"
            );
            for w in b.neighbors.windows(2) {
                assert!(w[0].distance <= w[1].distance);
            }
            assert!(b.neighbors.len() <= full.len());
            if !b.exhausted {
                assert_eq!(
                    b.neighbors, full,
                    "non-exhausted budget {budget} must be exact"
                );
                assert_eq!(b.nodes_skipped, 0);
            } else {
                assert!(b.nodes_skipped > 0);
            }
        }
        // Determinism: same budget, same answer.
        let a = tree.knn_in_budgeted(tree.root(), &q, 25, Some(40));
        let b = tree.knn_in_budgeted(tree.root(), &q, 25, Some(40));
        assert_eq!(a, b);
    }

    #[test]
    fn budget_zero_computes_nothing() {
        let items: Vec<(u64, Vec<f32>)> = (0..50u64).map(|i| (i, vec![i as f32, 0.0])).collect();
        let tree = RStarTree::bulk_load(TreeConfig::small(2), items);
        let b = tree.knn_in_budgeted(tree.root(), &[1.0, 0.0], 5, Some(0));
        assert!(b.neighbors.is_empty());
        assert!(b.exhausted);
        assert_eq!(b.accesses, 0);
    }

    #[test]
    fn pruned_budgeted_knn_matches_unpruned_ranking() {
        // The norm lower bound may skip evaluations but must never change
        // the ranking, the counters, or budget exhaustion points. Clustered
        // data with a far-off query maximizes pruning opportunity.
        let mut items = random_points(400, 8, 71);
        for (i, (_, p)) in items.iter_mut().enumerate() {
            if i % 3 == 0 {
                for v in p.iter_mut() {
                    *v += 200.0; // far cluster: large norm gap to near queries
                }
            }
        }
        let tree = RStarTree::bulk_load(TreeConfig::small(8), items.clone());
        let q = vec![1.0f32; 8];
        let mut saw_pruning = false;
        for budget in [0u64, 1, 10, 50, 200, 1000, u64::MAX] {
            let b = tree.knn_in_budgeted(tree.root(), &q, 25, Some(budget));
            saw_pruning |= b.distances_pruned > 0;
            assert!(b.distances_pruned <= b.distance_computations);
            if !b.exhausted {
                let want = brute_knn(&items, &q, 25);
                let got: Vec<u64> = b.neighbors.iter().map(|n| n.id).collect();
                assert_eq!(got, want, "budget {budget}");
            }
        }
        assert!(saw_pruning, "test data should trigger the norm lower bound");
    }

    #[test]
    fn check_invariants_catches_soa_length_mismatch() {
        let items = random_points(100, 3, 73);
        let mut tree = RStarTree::bulk_load(TreeConfig::small(3), items);
        assert!(tree.check_invariants().is_ok());
        tree.store.data.pop(); // SoA block no longer dims x slot_count
        let err = tree.check_invariants().unwrap_err();
        assert!(err.contains("feature block length"), "{err}");
    }

    #[test]
    fn check_invariants_catches_corrupt_child_chain() {
        let items = random_points(200, 2, 79);
        let mut tree = RStarTree::bulk_load(TreeConfig::small(2), items);
        let root = tree.root();
        let first = tree.children(root)[0];
        // Cut the chain short: the recorded count no longer matches.
        tree.nodes[first.index()].next_sibling = NONE;
        let err = tree.check_invariants().unwrap_err();
        assert!(err.contains("child chain"), "{err}");
    }

    #[test]
    fn check_invariants_catches_freed_slot_reference() {
        let items = random_points(60, 2, 83);
        let mut tree = RStarTree::bulk_load(TreeConfig::small(2), items);
        // Free a slot that a leaf still references.
        tree.store.release(0);
        let err = tree.check_invariants().unwrap_err();
        assert!(err.contains("slot"), "{err}");
    }

    #[test]
    fn bulk_load_packs_features_contiguously() {
        // Each leaf's slots form a contiguous ascending run of the SoA
        // block — the cache-linearity the arena layout exists for.
        let items = random_points(500, 3, 89);
        let tree = RStarTree::bulk_load(TreeConfig::small(3), items);
        for n in tree.node_ids() {
            if !tree.is_leaf(n) {
                continue;
            }
            let slots = match &tree.nodes[n.index()].kind {
                NodeKind::Leaf(s) => s.clone(),
                NodeKind::Internal { .. } => unreachable!(),
            };
            for w in slots.windows(2) {
                assert_eq!(w[1], w[0] + 1, "leaf slots not contiguous");
            }
        }
    }
}
