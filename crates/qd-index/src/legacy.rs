//! The pre-arena R\*-tree, kept verbatim for one PR as the reference side of
//! the differential arena-equivalence harness (`tests/arena_equivalence.rs`).
//!
//! This module is compiled only under the `legacy-rfs` feature and is
//! test-only scaffolding: it is the node-owned storage layout (per-node
//! `Vec<DataEntry>` / `Vec<NodeId>`) that `crate::tree` replaced with a flat
//! arena + contiguous feature store. Every algorithm (ChooseSubtree, forced
//! reinsertion, topological split, condensation, budgeted best-first k-NN)
//! is byte-for-byte the old implementation so the harness can assert the
//! rewrite changed nothing observable. Scheduled for removal next PR.

use crate::tree::{BudgetedKnn, Neighbor, NodeId, TreeConfig};
use crate::Rect;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

#[derive(Debug, Clone)]
struct DataEntry {
    id: u64,
    point: Vec<f32>,
}

#[derive(Debug)]
enum NodeKind {
    Leaf(Vec<DataEntry>),
    Internal(Vec<NodeId>),
}

#[derive(Debug)]
struct Node {
    rect: Option<Rect>,
    parent: Option<NodeId>,
    /// Leaves are level 0; the root has the highest level.
    level: u32,
    kind: NodeKind,
    live: bool,
}

impl Node {
    fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(d) => d.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }
}

/// Orphaned entry produced by condensation/reinsertion.
enum Orphan {
    Data(DataEntry),
    Subtree(NodeId),
}

/// The pre-arena R\*-tree (node-owned entry storage). API-compatible with
/// [`crate::RStarTree`] for everything the RFS layer uses.
#[derive(Debug)]
pub struct RStarTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: NodeId,
    len: usize,
    accesses: AtomicU64,
}

impl RStarTree {
    /// Creates an empty tree.
    ///
    /// # Panics
    /// Panics on an invalid [`TreeConfig`].
    pub fn new(config: TreeConfig) -> Self {
        config.validate();
        let root = Node {
            rect: None,
            parent: None,
            level: 0,
            kind: NodeKind::Leaf(Vec::new()),
            live: true,
        };
        Self {
            config,
            nodes: vec![root],
            free: Vec::new(),
            root: NodeId(0),
            len: 0,
            accesses: AtomicU64::new(0),
        }
    }

    /// Builds a tree by kd-style recursive tiling — cheaper than repeated
    /// insertion and producing well-separated leaves. Used for
    /// construction-cost comparisons and large benchmark corpora.
    ///
    /// # Panics
    /// Panics on an invalid config or a point with the wrong dimensionality.
    pub fn bulk_load(config: TreeConfig, items: Vec<(u64, Vec<f32>)>) -> Self {
        config.validate();
        let mut tree = Self::new(config);
        if items.is_empty() {
            return tree;
        }
        for (_, p) in &items {
            assert_eq!(p.len(), tree.config.dims, "point dimensionality mismatch");
        }
        tree.len = items.len();

        // Build leaves.
        let max = tree.config.max_entries;
        let mut entries: Vec<DataEntry> = items
            .into_iter()
            .map(|(id, point)| DataEntry { id, point })
            .collect();
        let chunks = partition_recursive(&mut entries, max, |e| &e.point);
        tree.nodes.clear();
        let mut level_nodes: Vec<NodeId> = chunks
            .into_iter()
            .map(|chunk| {
                let rect = bounding_rect_of_points(&chunk);
                let id = NodeId(tree.nodes.len() as u32);
                tree.nodes.push(Node {
                    rect: Some(rect),
                    parent: None,
                    level: 0,
                    kind: NodeKind::Leaf(chunk),
                    live: true,
                });
                id
            })
            .collect();

        // Build internal levels until a single root remains.
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let mut handles: Vec<(NodeId, Vec<f32>)> = level_nodes
                .iter()
                .map(|&n| (n, tree.nodes[n.index()].rect.as_ref().unwrap().center()))
                .collect();
            let groups = partition_recursive(&mut handles, max, |h| &h.1);
            level_nodes = groups
                .into_iter()
                .map(|group| {
                    let children: Vec<NodeId> = group.into_iter().map(|(n, _)| n).collect();
                    let rect = tree.rect_of_children(&children);
                    let id = NodeId(tree.nodes.len() as u32);
                    tree.nodes.push(Node {
                        rect: Some(rect),
                        parent: None,
                        level,
                        kind: NodeKind::Internal(children.clone()),
                        live: true,
                    });
                    for c in children {
                        tree.nodes[c.index()].parent = Some(id);
                    }
                    id
                })
                .collect();
            level += 1;
        }
        tree.root = level_nodes[0];
        tree
    }

    /// Point dimensionality.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (a lone leaf root is height 1).
    pub fn height(&self) -> usize {
        self.nodes[self.root.index()].level as usize + 1
    }

    /// Root node handle.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All live node handles, in arbitrary order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|n| self.nodes[n.index()].live)
            .collect()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.live).count()
    }

    /// True if `n` is a live node handle of *this* tree. Node accessors
    /// panic on dangling or foreign handles; serving paths that receive a
    /// handle from outside (e.g. a client's remote query) validate with this
    /// first and turn the answer into a typed error.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|node| node.live)
    }

    /// Level of `n` (0 = leaf).
    pub fn level(&self, n: NodeId) -> u32 {
        self.node(n).level
    }

    /// True if `n` is a leaf.
    pub fn is_leaf(&self, n: NodeId) -> bool {
        matches!(self.node(n).kind, NodeKind::Leaf(_))
    }

    /// Parent of `n`, if any.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.node(n).parent
    }

    /// Bounding rectangle of `n` (`None` only for an empty root).
    pub fn node_rect(&self, n: NodeId) -> Option<&Rect> {
        self.node(n).rect.as_ref()
    }

    /// Children of an internal node; empty for leaves.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        match &self.node(n).kind {
            NodeKind::Internal(c) => c,
            NodeKind::Leaf(_) => &[],
        }
    }

    /// `(id, point)` pairs stored in a leaf; empty for internal nodes.
    pub fn leaf_entries(&self, n: NodeId) -> impl Iterator<Item = (u64, &[f32])> {
        let data: &[DataEntry] = match &self.node(n).kind {
            NodeKind::Leaf(d) => d,
            NodeKind::Internal(_) => &[],
        };
        data.iter().map(|e| (e.id, e.point.as_slice()))
    }

    /// All `(id, point)` pairs stored under `n`.
    pub fn subtree_items(&self, n: NodeId) -> Vec<(u64, &[f32])> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            match &self.node(cur).kind {
                NodeKind::Leaf(d) => out.extend(d.iter().map(|e| (e.id, e.point.as_slice()))),
                NodeKind::Internal(c) => stack.extend_from_slice(c),
            }
        }
        out
    }

    /// Number of points stored under `n`.
    pub fn subtree_len(&self, n: NodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            match &self.node(cur).kind {
                NodeKind::Leaf(d) => count += d.len(),
                NodeKind::Internal(c) => stack.extend_from_slice(c),
            }
        }
        count
    }

    /// Node accesses performed since the last [`Self::reset_accesses`] —
    /// the simulated-I/O unit of §5.2.2 (one access ≈ one disk page read).
    pub fn accesses(&self) -> u64 {
        self.accesses.load(AtomicOrdering::Relaxed)
    }

    /// Resets the node-access counter.
    pub fn reset_accesses(&self) {
        self.accesses.store(0, AtomicOrdering::Relaxed);
    }

    #[inline]
    fn touch(&self, _n: NodeId) {
        self.accesses.fetch_add(1, AtomicOrdering::Relaxed);
    }

    #[inline]
    fn node(&self, n: NodeId) -> &Node {
        let node = &self.nodes[n.index()];
        debug_assert!(node.live, "dangling NodeId");
        node
    }

    #[inline]
    fn node_mut(&mut self, n: NodeId) -> &mut Node {
        let node = &mut self.nodes[n.index()];
        debug_assert!(node.live, "dangling NodeId");
        node
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            NodeId(i)
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(node);
            NodeId(i)
        }
    }

    fn release(&mut self, n: NodeId) {
        self.nodes[n.index()].live = false;
        self.nodes[n.index()].rect = None;
        self.free.push(n.0);
    }

    fn rect_of_children(&self, children: &[NodeId]) -> Rect {
        let mut it = children.iter();
        let first = *it.next().expect("empty child list");
        let mut rect = self.node(first).rect.clone().expect("child without rect");
        for &c in it {
            rect.enlarge(self.node(c).rect.as_ref().expect("child without rect"));
        }
        rect
    }

    fn recompute_rect(&mut self, n: NodeId) {
        let rect = match &self.node(n).kind {
            NodeKind::Leaf(d) => {
                if d.is_empty() {
                    None
                } else {
                    Some(bounding_rect_of_points(d))
                }
            }
            NodeKind::Internal(c) => {
                if c.is_empty() {
                    None
                } else {
                    Some(self.rect_of_children(c))
                }
            }
        };
        self.node_mut(n).rect = rect;
    }

    /// Recomputes rectangles from `n` up to the root.
    fn adjust_upward(&mut self, mut n: NodeId) {
        loop {
            self.recompute_rect(n);
            match self.node(n).parent {
                Some(p) => n = p,
                None => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts `point` under the caller-assigned `id`.
    ///
    /// Duplicate ids are permitted (the tree is a multiset); the CBIR corpus
    /// assigns unique image ids.
    ///
    /// # Panics
    /// Panics if `point` has the wrong dimensionality.
    pub fn insert(&mut self, point: Vec<f32>, id: u64) {
        assert_eq!(
            point.len(),
            self.config.dims,
            "point dimensionality mismatch"
        );
        let mut reinserted = vec![false; self.height()];
        self.insert_orphan(Orphan::Data(DataEntry { id, point }), 0, &mut reinserted);
        self.len += 1;
    }

    /// Inserts an orphan (data entry or whole subtree) at the given level.
    fn insert_orphan(&mut self, orphan: Orphan, level: u32, reinserted: &mut Vec<bool>) {
        match orphan {
            Orphan::Data(entry) => {
                debug_assert_eq!(level, 0);
                let leaf = self.choose_subtree(&Rect::point(&entry.point), 0);
                match &mut self.node_mut(leaf).kind {
                    NodeKind::Leaf(d) => d.push(entry),
                    NodeKind::Internal(_) => unreachable!("choose_subtree(0) returned internal"),
                }
                self.adjust_upward(leaf);
                if self.node(leaf).entry_count() > self.config.max_entries {
                    self.overflow(leaf, reinserted);
                }
            }
            Orphan::Subtree(child) => {
                let child_rect = self.node(child).rect.clone().expect("orphan without rect");
                // A subtree of level L becomes the child of a node at L+1.
                let target = self.choose_subtree(&child_rect, level + 1);
                match &mut self.node_mut(target).kind {
                    NodeKind::Internal(c) => c.push(child),
                    NodeKind::Leaf(_) => unreachable!("subtree orphan aimed at a leaf"),
                }
                self.node_mut(child).parent = Some(target);
                self.adjust_upward(target);
                if self.node(target).entry_count() > self.config.max_entries {
                    self.overflow(target, reinserted);
                }
            }
        }
    }

    /// R\* `ChooseSubtree`: descends from the root to a node at
    /// `target_level`, minimizing overlap enlargement when the children are
    /// leaves and area enlargement otherwise.
    fn choose_subtree(&self, rect: &Rect, target_level: u32) -> NodeId {
        let mut n = self.root;
        while self.node(n).level > target_level {
            self.touch(n);
            let children = match &self.node(n).kind {
                NodeKind::Internal(c) => c,
                NodeKind::Leaf(_) => unreachable!("leaf above target level"),
            };
            n = if self.node(n).level == 1 {
                self.pick_min_overlap_child(children, rect)
            } else {
                self.pick_min_area_child(children, rect)
            };
        }
        self.touch(n);
        n
    }

    fn pick_min_area_child(&self, children: &[NodeId], rect: &Rect) -> NodeId {
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for &c in children {
            let r = self.node(c).rect.as_ref().expect("child without rect");
            let key = (r.enlargement(rect), r.area());
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    /// Minimum overlap-enlargement child. For wide nodes, only the
    /// `CANDIDATES` children with the least area enlargement are examined —
    /// the R\* paper's own large-fan-out shortcut.
    fn pick_min_overlap_child(&self, children: &[NodeId], rect: &Rect) -> NodeId {
        const CANDIDATES: usize = 16;
        let mut by_area: Vec<(f64, NodeId)> = children
            .iter()
            .map(|&c| {
                let r = self.node(c).rect.as_ref().expect("child without rect");
                (r.enlargement(rect), c)
            })
            .collect();
        by_area.sort_by(|a, b| a.0.total_cmp(&b.0));
        by_area.truncate(CANDIDATES.max(1));

        let mut best = by_area[0].1;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &(area_enlargement, c) in &by_area {
            let r = self.node(c).rect.as_ref().unwrap();
            let enlarged = r.union(rect);
            let mut overlap_increase = 0.0;
            for &s in children {
                if s == c {
                    continue;
                }
                let sr = self.node(s).rect.as_ref().unwrap();
                overlap_increase += enlarged.overlap(sr) - r.overlap(sr);
            }
            let key = (overlap_increase, area_enlargement, r.area());
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    /// R\* `OverflowTreatment`: forced reinsertion once per level per
    /// insertion, splits thereafter.
    fn overflow(&mut self, n: NodeId, reinserted: &mut Vec<bool>) {
        let level = self.node(n).level as usize;
        if n != self.root && !reinserted.get(level).copied().unwrap_or(false) {
            if reinserted.len() <= level {
                reinserted.resize(level + 1, false);
            }
            reinserted[level] = true;
            self.forced_reinsert(n, reinserted);
        } else {
            self.split_and_propagate(n, reinserted);
        }
    }

    /// Evicts the `reinsert_fraction` entries farthest from the node center
    /// and re-inserts them from the top.
    fn forced_reinsert(&mut self, n: NodeId, reinserted: &mut Vec<bool>) {
        let center = self
            .node(n)
            .rect
            .as_ref()
            .expect("overflowing node without rect")
            .center();
        let count = ((self.config.max_entries as f32 * self.config.reinsert_fraction).ceil()
            as usize)
            .max(1);
        let level = self.node(n).level;

        let orphans: Vec<Orphan> = match &mut self.node_mut(n).kind {
            NodeKind::Leaf(d) => {
                d.sort_by(|a, b| dist2(&a.point, &center).total_cmp(&dist2(&b.point, &center)));
                d.split_off(d.len() - count.min(d.len()))
                    .into_iter()
                    .map(Orphan::Data)
                    .collect()
            }
            NodeKind::Internal(_) => {
                // Need rect centers, which requires immutable access; collect
                // the order first.
                let children = match &self.node(n).kind {
                    NodeKind::Internal(c) => c.clone(),
                    _ => unreachable!(),
                };
                let mut scored: Vec<(f64, NodeId)> = children
                    .iter()
                    .map(|&c| {
                        let ccenter = self.node(c).rect.as_ref().unwrap().center();
                        (dist2(&ccenter, &center), c)
                    })
                    .collect();
                scored.sort_by(|a, b| a.0.total_cmp(&b.0));
                let evicted: Vec<NodeId> = scored
                    .split_off(scored.len() - count.min(scored.len()))
                    .into_iter()
                    .map(|(_, c)| c)
                    .collect();
                match &mut self.node_mut(n).kind {
                    NodeKind::Internal(c) => c.retain(|x| !evicted.contains(x)),
                    _ => unreachable!(),
                }
                evicted.into_iter().map(Orphan::Subtree).collect()
            }
        };

        self.adjust_upward(n);
        for orphan in orphans {
            // `insert_orphan` takes the level of the orphan itself: data
            // entries are level 0, evicted children sit one level below the
            // node they came from.
            let orphan_level = match &orphan {
                Orphan::Data(_) => 0,
                Orphan::Subtree(_) => level - 1,
            };
            self.insert_orphan(orphan, orphan_level, reinserted);
        }
    }

    fn split_and_propagate(&mut self, n: NodeId, reinserted: &mut Vec<bool>) {
        let sibling = self.split(n);
        if n == self.root {
            let level = self.node(n).level + 1;
            let new_root = self.alloc(Node {
                rect: None,
                parent: None,
                level,
                kind: NodeKind::Internal(vec![n, sibling]),
                live: true,
            });
            self.node_mut(n).parent = Some(new_root);
            self.node_mut(sibling).parent = Some(new_root);
            self.root = new_root;
            self.recompute_rect(new_root);
        } else {
            let parent = self.node(n).parent.expect("non-root without parent");
            match &mut self.node_mut(parent).kind {
                NodeKind::Internal(c) => c.push(sibling),
                NodeKind::Leaf(_) => unreachable!("parent is a leaf"),
            }
            self.node_mut(sibling).parent = Some(parent);
            self.adjust_upward(parent);
            if self.node(parent).entry_count() > self.config.max_entries {
                self.overflow(parent, reinserted);
            }
        }
    }

    /// R\* topological split: choose the axis minimizing total margin over
    /// all distributions, then the distribution minimizing overlap (ties by
    /// area). Returns the new sibling holding the second group.
    fn split(&mut self, n: NodeId) -> NodeId {
        let m = self.config.min_entries;
        let rects: Vec<Rect> = match &self.node(n).kind {
            NodeKind::Leaf(d) => d.iter().map(|e| Rect::point(&e.point)).collect(),
            NodeKind::Internal(c) => c
                .iter()
                .map(|&c| self.node(c).rect.clone().expect("child without rect"))
                .collect(),
        };
        let total = rects.len();
        debug_assert!(total > self.config.max_entries);

        let dims = self.config.dims;
        let mut best_axis = 0usize;
        let mut best_axis_margin = f64::INFINITY;
        let mut best_axis_order: Vec<usize> = Vec::new();

        for axis in 0..dims {
            for sort_by_upper in [false, true] {
                let mut order: Vec<usize> = (0..total).collect();
                order.sort_by(|&a, &b| {
                    let (ka, kb) = if sort_by_upper {
                        (rects[a].max()[axis], rects[b].max()[axis])
                    } else {
                        (rects[a].min()[axis], rects[b].min()[axis])
                    };
                    ka.total_cmp(&kb)
                });
                let margin_sum = distributions(&order, &rects, m)
                    .iter()
                    .map(|d| d.margin_sum)
                    .sum::<f64>();
                if margin_sum < best_axis_margin {
                    best_axis_margin = margin_sum;
                    best_axis = axis;
                    best_axis_order = order;
                }
            }
        }
        let _ = best_axis; // retained for debugging clarity

        let split_at = {
            let dists = distributions(&best_axis_order, &rects, m);
            let mut best = &dists[0];
            for d in &dists {
                if (d.overlap, d.area_sum) < (best.overlap, best.area_sum) {
                    best = d;
                }
            }
            best.first_group_len
        };

        // Partition the actual entries according to the chosen order.
        let second_indices: std::collections::HashSet<usize> =
            best_axis_order[split_at..].iter().copied().collect();
        let level = self.node(n).level;

        let sibling_kind = match &mut self.node_mut(n).kind {
            NodeKind::Leaf(d) => {
                let mut keep = Vec::with_capacity(split_at);
                let mut give = Vec::with_capacity(total - split_at);
                for (i, e) in d.drain(..).enumerate() {
                    if second_indices.contains(&i) {
                        give.push(e);
                    } else {
                        keep.push(e);
                    }
                }
                *d = keep;
                NodeKind::Leaf(give)
            }
            NodeKind::Internal(c) => {
                let mut keep = Vec::with_capacity(split_at);
                let mut give = Vec::with_capacity(total - split_at);
                for (i, child) in c.drain(..).enumerate() {
                    if second_indices.contains(&i) {
                        give.push(child);
                    } else {
                        keep.push(child);
                    }
                }
                *c = keep;
                NodeKind::Internal(give)
            }
        };

        let sibling = self.alloc(Node {
            rect: None,
            parent: None,
            level,
            kind: sibling_kind,
            live: true,
        });
        if let NodeKind::Internal(children) = &self.nodes[sibling.index()].kind {
            let children = children.clone();
            for c in children {
                self.node_mut(c).parent = Some(sibling);
            }
        }
        self.recompute_rect(n);
        self.recompute_rect(sibling);
        sibling
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes the entry with the given point and id. Returns `false` if no
    /// such entry exists.
    pub fn remove(&mut self, point: &[f32], id: u64) -> bool {
        assert_eq!(
            point.len(),
            self.config.dims,
            "point dimensionality mismatch"
        );
        let Some(leaf) = self.find_leaf(self.root, point, id) else {
            return false;
        };
        match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf(d) => {
                let pos = d
                    .iter()
                    .position(|e| e.id == id && e.point == point)
                    .expect("find_leaf returned a leaf without the entry");
                d.swap_remove(pos);
            }
            NodeKind::Internal(_) => unreachable!(),
        }
        self.len -= 1;
        self.condense(leaf);
        true
    }

    fn find_leaf(&self, n: NodeId, point: &[f32], id: u64) -> Option<NodeId> {
        self.touch(n);
        match &self.node(n).kind {
            NodeKind::Leaf(d) => d
                .iter()
                .any(|e| e.id == id && e.point == point)
                .then_some(n),
            NodeKind::Internal(c) => c
                .iter()
                .filter(|&&child| {
                    self.node(child)
                        .rect
                        .as_ref()
                        .is_some_and(|r| r.contains_point(point))
                })
                .find_map(|&child| self.find_leaf(child, point, id)),
        }
    }

    /// `CondenseTree`: removes underfull ancestors, collecting orphans for
    /// reinsertion, then shrinks a single-child internal root.
    fn condense(&mut self, leaf: NodeId) {
        let m = self.config.min_entries;
        let mut orphans: Vec<(Orphan, u32)> = Vec::new();
        let mut cur = leaf;
        while cur != self.root {
            let parent = self.node(cur).parent.expect("non-root without parent");
            if self.node(cur).entry_count() < m {
                match &mut self.node_mut(parent).kind {
                    NodeKind::Internal(c) => c.retain(|&x| x != cur),
                    NodeKind::Leaf(_) => unreachable!(),
                }
                let level = self.node(cur).level;
                match std::mem::replace(&mut self.node_mut(cur).kind, NodeKind::Leaf(Vec::new())) {
                    NodeKind::Leaf(d) => {
                        orphans.extend(d.into_iter().map(|e| (Orphan::Data(e), 0)))
                    }
                    NodeKind::Internal(children) => {
                        orphans.extend(
                            children
                                .into_iter()
                                .map(|c| (Orphan::Subtree(c), level - 1)),
                        );
                    }
                }
                self.release(cur);
            } else {
                self.recompute_rect(cur);
            }
            cur = parent;
        }
        self.recompute_rect(self.root);

        for (orphan, level) in orphans {
            let mut reinserted = vec![true; self.height()]; // no forced reinsert storms
            self.insert_orphan(orphan, level, &mut reinserted);
        }

        // Shrink the root while it is an internal node with one child.
        loop {
            let child = match &self.node(self.root).kind {
                NodeKind::Internal(c) if c.len() == 1 => c[0],
                _ => break,
            };
            let old = self.root;
            self.node_mut(child).parent = None;
            self.root = child;
            self.release(old);
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The `k` nearest neighbors of `query` over the whole database,
    /// ascending by distance.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.knn_in(self.root, query, k)
    }

    /// The `k` nearest neighbors of `query` among the points stored under
    /// `scope` — the paper's *localized* k-NN computation (§3.3): each final
    /// subquery searches only its own subcluster.
    pub fn knn_in(&self, scope: NodeId, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.knn_in_counted(scope, query, k).0
    }

    /// [`Self::knn_in`] that additionally returns the number of node accesses
    /// this call performed. The count is accumulated call-locally (and folded
    /// into the global [`Self::accesses`] counter afterwards), so concurrent
    /// queries over a shared tree each see exactly their own cost — the
    /// per-subquery accounting the deterministic parallel executor relies on.
    pub fn knn_in_counted(&self, scope: NodeId, query: &[f32], k: usize) -> (Vec<Neighbor>, u64) {
        let b = self.knn_in_budgeted(scope, query, k, None);
        (b.neighbors, b.accesses)
    }

    /// [`Self::knn_in_counted`] under an optional *distance-computation
    /// budget* — the anytime variant behind cost-budgeted graceful
    /// degradation. The budget counts distance evaluations (one per leaf
    /// entry scored, one per child-rectangle MINDIST), a deterministic
    /// machine-independent cost measure: no wall clock is consulted, so a
    /// fixed `(scope, query, k, budget)` tuple always returns bit-identical
    /// results at any thread count.
    ///
    /// Once the budget is spent, no further node is expanded; data entries
    /// already scored keep draining from the frontier in distance order
    /// (best-so-far fill toward `k`), and every node left unexpanded is
    /// counted in [`BudgetedKnn::nodes_skipped`]. `None` means unlimited and
    /// behaves exactly like [`Self::knn_in_counted`].
    pub fn knn_in_budgeted(
        &self,
        scope: NodeId,
        query: &[f32],
        k: usize,
        budget: Option<u64>,
    ) -> BudgetedKnn {
        assert_eq!(
            query.len(),
            self.config.dims,
            "query dimensionality mismatch"
        );
        let mut touched = 0u64;
        let mut spent = 0u64;
        let mut nodes_skipped = 0u64;
        let mut exhausted = false;
        let mut out = Vec::with_capacity(k);
        if k == 0 || self.node(scope).rect.is_none() {
            return BudgetedKnn {
                neighbors: out,
                accesses: touched,
                distance_computations: spent,
                distances_pruned: 0,
                nodes_skipped,
                exhausted,
            };
        }
        #[derive(PartialEq)]
        struct HeapItem {
            dist2: f64,
            kind: HeapKind,
        }
        #[derive(PartialEq)]
        enum HeapKind {
            Node(NodeId),
            Data(u64),
        }
        impl Eq for HeapItem {}
        impl PartialOrd for HeapItem {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapItem {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance via reversed comparison.
                other.dist2.total_cmp(&self.dist2)
            }
        }

        let mut heap = BinaryHeap::new();
        let scope_rect = match self.node(scope).rect.as_ref() {
            Some(r) => r,
            None => unreachable!("rect presence checked above"),
        };
        spent += 1;
        heap.push(HeapItem {
            dist2: scope_rect.min_dist2(query),
            kind: HeapKind::Node(scope),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                HeapKind::Data(id) => {
                    out.push(Neighbor {
                        id,
                        distance: item.dist2.sqrt() as f32,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                HeapKind::Node(n) => {
                    if budget.is_some_and(|b| spent >= b) {
                        // Budget gone: leave this subtree unexplored but keep
                        // draining already-scored data entries.
                        exhausted = true;
                        nodes_skipped += 1;
                        continue;
                    }
                    touched += 1;
                    match &self.node(n).kind {
                        NodeKind::Leaf(d) => {
                            spent += d.len() as u64;
                            for e in d {
                                heap.push(HeapItem {
                                    dist2: dist2(&e.point, query),
                                    kind: HeapKind::Data(e.id),
                                });
                            }
                        }
                        NodeKind::Internal(c) => {
                            for &child in c {
                                if let Some(r) = self.node(child).rect.as_ref() {
                                    spent += 1;
                                    heap.push(HeapItem {
                                        dist2: r.min_dist2(query),
                                        kind: HeapKind::Node(child),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        self.accesses.fetch_add(touched, AtomicOrdering::Relaxed);
        BudgetedKnn {
            neighbors: out,
            accesses: touched,
            distance_computations: spent,
            distances_pruned: 0,
            nodes_skipped,
            exhausted,
        }
    }

    /// The single nearest neighbor of `query`, if the tree is non-empty.
    pub fn nearest(&self, query: &[f32]) -> Option<Neighbor> {
        self.knn(query, 1).into_iter().next()
    }

    /// Per-level occupancy statistics: `(level, node count, mean fill)`.
    /// Fill is entries per node relative to `max_entries`; useful for
    /// inspecting construction quality (bulk load vs R\* insertion).
    pub fn occupancy(&self) -> Vec<(u32, usize, f64)> {
        let mut per_level: std::collections::BTreeMap<u32, (usize, usize)> =
            std::collections::BTreeMap::new();
        for n in self.node_ids() {
            let e = per_level.entry(self.level(n)).or_insert((0, 0));
            e.0 += 1;
            e.1 += self.node(n).entry_count();
        }
        per_level
            .into_iter()
            .map(|(level, (nodes, entries))| {
                (
                    level,
                    nodes,
                    entries as f64 / (nodes * self.config.max_entries) as f64,
                )
            })
            .collect()
    }

    /// Ids of all points inside `range` (boundary inclusive).
    pub fn range(&self, range: &Rect) -> Vec<u64> {
        assert_eq!(
            range.dim(),
            self.config.dims,
            "range dimensionality mismatch"
        );
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let Some(rect) = self.node(n).rect.as_ref() else {
                continue;
            };
            if !rect.intersects(range) {
                continue;
            }
            self.touch(n);
            match &self.node(n).kind {
                NodeKind::Leaf(d) => {
                    out.extend(
                        d.iter()
                            .filter(|e| range.contains_point(&e.point))
                            .map(|e| e.id),
                    );
                }
                NodeKind::Internal(c) => stack.extend_from_slice(c),
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Invariants (used heavily by tests)
    // ------------------------------------------------------------------

    /// Checks every structural invariant, panicking with a description of the
    /// first violation. Intended for tests and debug assertions.
    pub fn validate(&self) {
        if let Err(msg) = self.check_invariants() {
            panic!("{msg}");
        }
    }

    /// Non-panicking invariant check: returns a description of the first
    /// violation. Used by deserialization to reject corrupt files.
    pub fn check_invariants(&self) -> Result<(), String> {
        let root = self.root;
        let fail = |msg: String| Err(msg);
        let root_node = self
            .nodes
            .get(root.index())
            .filter(|n| n.live)
            .ok_or_else(|| "root is not a live node".to_string())?;
        if root_node.parent.is_some() {
            return fail("root has a parent".to_string());
        }
        let mut seen_points = 0usize;
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !visited.insert(n) {
                return fail(format!(
                    "node {n:?} reachable twice (cycle or shared child)"
                ));
            }
            let node = self
                .nodes
                .get(n.index())
                .filter(|x| x.live)
                .ok_or_else(|| format!("dangling child reference {n:?}"))?;
            if n != root && node.entry_count() < self.config.min_entries {
                return fail(format!("node {n:?} underfull: {}", node.entry_count()));
            }
            if node.entry_count() > self.config.max_entries {
                return fail(format!("node {n:?} overfull: {}", node.entry_count()));
            }
            match &node.kind {
                NodeKind::Leaf(d) => {
                    if node.level != 0 {
                        return fail(format!("leaf at level {}", node.level));
                    }
                    seen_points += d.len();
                    if let Some(rect) = &node.rect {
                        for e in d {
                            if e.point.len() != self.config.dims {
                                return fail("point dimensionality mismatch".to_string());
                            }
                            if !rect.contains_point(&e.point) {
                                return fail("leaf rect does not contain its point".to_string());
                            }
                        }
                    } else if !d.is_empty() {
                        return fail("leaf with points but no rect".to_string());
                    }
                }
                NodeKind::Internal(c) => {
                    if c.is_empty() {
                        return fail("internal node without children".to_string());
                    }
                    let rect = node
                        .rect
                        .as_ref()
                        .ok_or_else(|| "internal node without rect".to_string())?;
                    for &child in c {
                        let cn = self
                            .nodes
                            .get(child.index())
                            .filter(|x| x.live)
                            .ok_or_else(|| format!("dangling child reference {child:?}"))?;
                        if cn.parent != Some(n) {
                            return fail("bad parent pointer".to_string());
                        }
                        if cn.level + 1 != node.level {
                            return fail("level mismatch".to_string());
                        }
                        let crect = cn
                            .rect
                            .as_ref()
                            .ok_or_else(|| "child without rect".to_string())?;
                        if crect.dim() != self.config.dims || rect.dim() != self.config.dims {
                            return fail("rect dimensionality mismatch".to_string());
                        }
                        if !rect.contains_rect(crect) {
                            return fail("parent rect does not contain child rect".to_string());
                        }
                        stack.push(child);
                    }
                }
            }
        }
        if seen_points != self.len {
            return fail(format!(
                "len {} does not match stored points {seen_points}",
                self.len
            ));
        }
        Ok(())
    }
}

/// One candidate split distribution.
struct Distribution {
    first_group_len: usize,
    margin_sum: f64,
    overlap: f64,
    area_sum: f64,
}

/// All legal (first, second) group splits of `order`, each group at least `m`.
fn distributions(order: &[usize], rects: &[Rect], m: usize) -> Vec<Distribution> {
    let total = order.len();
    let mut out = Vec::with_capacity(total.saturating_sub(2 * m) + 1);
    for first_len in m..=(total - m) {
        let first = bounding_rect(order[..first_len].iter().map(|&i| &rects[i]));
        let second = bounding_rect(order[first_len..].iter().map(|&i| &rects[i]));
        out.push(Distribution {
            first_group_len: first_len,
            margin_sum: first.margin() + second.margin(),
            overlap: first.overlap(&second),
            area_sum: first.area() + second.area(),
        });
    }
    out
}

fn bounding_rect<'a>(mut rects: impl Iterator<Item = &'a Rect>) -> Rect {
    let mut out = rects.next().expect("empty rect set").clone();
    for r in rects {
        out.enlarge(r);
    }
    out
}

fn bounding_rect_of_points(entries: &[DataEntry]) -> Rect {
    let mut rect = Rect::point(&entries[0].point);
    for e in &entries[1..] {
        rect.enlarge(&Rect::point(&e.point));
    }
    rect
}

fn dist2(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum()
}

/// Recursively partitions `items` into chunks of at most `max` elements by
/// median-splitting along the widest dimension — the bulk-load tiler.
fn partition_recursive<T>(
    items: &mut [T],
    max: usize,
    key: impl Fn(&T) -> &[f32] + Copy,
) -> Vec<Vec<T>>
where
    T: Clone,
{
    if items.len() <= max {
        return vec![items.to_vec()];
    }
    let dims = key(&items[0]).len();
    let mut widest = 0usize;
    let mut widest_span = f32::NEG_INFINITY;
    for d in 0..dims {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for item in items.iter() {
            let v = key(item)[d];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi - lo > widest_span {
            widest_span = hi - lo;
            widest = d;
        }
    }
    let mid = items.len() / 2;
    items.sort_by(|a, b| key(a)[widest].total_cmp(&key(b)[widest]));
    let (left, right) = items.split_at_mut(mid);
    let mut out = partition_recursive(left, max, key);
    out.extend(partition_recursive(right, max, key));
    out
}
